//! Fork-isolation property tests: mutations in a forked child must never
//! become visible in the parent or in sibling forks, even though all of
//! them share storage copy-on-write. Also checks the soundness side of
//! cache inheritance: entries present *before* a fork are visible in every
//! descendant (that is what makes sharing `raw_proofs` worthwhile), while
//! entries added *after* stay fork-local.

use tpot_engine::state::State;
use tpot_mem::{AddrMode, Memory, ObjectId};
use tpot_smt::{Sort, TermArena, TermId};

fn fresh_state(arena: &mut TermArena, n_globals: u64) -> State {
    let mut mem = Memory::new(arena, AddrMode::Int);
    for i in 0..n_globals {
        mem.alloc_global(arena, &format!("g{i}"), 8);
    }
    State::new(mem)
}

/// Writes one byte `val` at offset `off` of object `o` through `s`.
fn poke(arena: &mut TermArena, s: &mut State, o: ObjectId, off: u64, val: u8) {
    let base = s
        .mem
        .obj(o)
        .concrete_base
        .expect("global has concrete base");
    let idx = s.mem.idx_const(arena, base + off);
    let v = arena.bv_const(8, val as u128);
    s.mem.write_bytes(arena, o, idx, v, 1);
}

#[test]
fn child_memory_writes_do_not_leak_into_parent_or_sibling() {
    let mut a = TermArena::new();
    let parent = fresh_state(&mut a, 8);
    let n = parent.mem.objects.len();
    let before: Vec<TermId> = parent.mem.objects.iter().map(|o| o.array).collect();

    let mut child = parent.fork();
    let sibling = parent.fork();
    assert!(parent.mem.objects.ptr_eq(&child.mem.objects));
    assert!(parent.mem.objects.ptr_eq(&sibling.mem.objects));

    let victim = ObjectId(3);
    poke(&mut a, &mut child, victim, 2, 0xab);

    // The child sees its own write; nobody else's array term moved.
    assert_ne!(child.mem.obj(victim).array, before[3]);
    for (i, o) in parent.mem.objects.iter().enumerate() {
        assert_eq!(
            o.array, before[i],
            "parent object {i} changed under a child write"
        );
    }
    for (i, o) in sibling.mem.objects.iter().enumerate() {
        assert_eq!(
            o.array, before[i],
            "sibling object {i} changed under a child write"
        );
    }
    // COW granularity: exactly the mutated element was copied; every other
    // object is still physically the parent's.
    for i in 0..n {
        assert_eq!(
            child.mem.objects.element_shared(&parent.mem.objects, i),
            i != 3,
            "object {i}: wrong sharing after single-object write"
        );
    }
    assert!(sibling.mem.objects.ptr_eq(&parent.mem.objects));
}

#[test]
fn child_freed_flag_does_not_leak() {
    let mut a = TermArena::new();
    let parent = fresh_state(&mut a, 4);
    let mut child = parent.fork();
    child.mem.obj_mut(ObjectId(1)).freed = true;
    assert!(child.mem.obj(ObjectId(1)).freed);
    assert!(
        !parent.mem.obj(ObjectId(1)).freed,
        "freed flag leaked into parent"
    );
}

#[test]
fn cache_mutations_are_fork_local() {
    let mut a = TermArena::new();
    let parent = fresh_state(&mut a, 2);
    let t1 = a.var("t1", Sort::Bool);
    let t2 = a.var("t2", Sort::Bool);

    let mut child = parent.fork();
    let sibling = parent.fork();
    assert!(parent.raw_proofs.ptr_eq(&child.raw_proofs));
    assert!(parent.resolution_hints.ptr_eq(&child.resolution_hints));
    assert!(parent.instantiated.ptr_eq(&child.instantiated));

    child.raw_proofs.insert((t1, t2), true);
    child.const_offsets.insert(t1, t2);
    child.resolution_hints.insert(t1, (ObjectId(0), t2));
    child.check_bindings.insert("x".to_string(), ObjectId(1));
    child.instantiated.insert((ObjectId(0), 0, t1));

    for s in [&parent, &sibling] {
        assert_eq!(s.raw_proofs.len(), 0);
        assert_eq!(s.const_offsets.len(), 0);
        assert_eq!(s.resolution_hints.len(), 0);
        assert_eq!(s.check_bindings.len(), 0);
        assert_eq!(s.instantiated.len(), 0);
    }
    assert_eq!(child.raw_proofs.get(&(t1, t2)), Some(&true));
    assert!(child.instantiated.contains(&(ObjectId(0), 0, t1)));
}

#[test]
fn raw_proofs_inheritance_is_sound_under_cow() {
    let mut a = TermArena::new();
    let mut parent = fresh_state(&mut a, 2);
    let t1 = a.var("u1", Sort::Bool);
    let t2 = a.var("u2", Sort::Bool);
    let t3 = a.var("u3", Sort::Bool);
    // Proof established before the fork: both descendants inherit it —
    // sound because forks only ever strengthen the path condition (§4.3).
    parent.raw_proofs.insert((t1, t2), true);
    parent.check_bindings.insert("b".to_string(), ObjectId(0));

    let mut child = parent.fork();
    assert_eq!(child.raw_proofs.get(&(t1, t2)), Some(&true));
    assert!(
        child.raw_proofs.ptr_eq(&parent.raw_proofs),
        "inheritance must not copy"
    );

    // The child strengthens its path and learns a new proof; the parent
    // must not observe it (its weaker path might not entail it).
    let c = a.var("branch", Sort::Bool);
    child.assume(c);
    child.raw_proofs.insert((t2, t3), false);
    assert_eq!(parent.raw_proofs.len(), 1);
    assert_eq!(parent.raw_proofs.get(&(t2, t3)), None);

    // Clearing the child's greedy-renaming bindings (a per-check reset the
    // driver performs) leaves the parent's bindings intact.
    child.check_bindings.clear();
    assert_eq!(parent.check_bindings.get("b"), Some(&ObjectId(0)));
}

#[test]
fn register_and_frame_mutations_do_not_leak() {
    use std::collections::HashMap;
    use std::collections::VecDeque;
    use tpot_engine::state::{Frame, RetCont};

    let mut a = TermArena::new();
    let mut parent = fresh_state(&mut a, 1);
    let v0 = a.bv_const(64, 7);
    parent.frames.push(Frame {
        func: 0,
        block: 0,
        ip: 0,
        regs: vec![Some(v0), None],
        local_objs: vec![],
        ret_reg: None,
        on_return: RetCont::Normal,
        pending: VecDeque::new(),
        loops: HashMap::new(),
        prev_naming: None,
    });

    let mut child = parent.fork();
    let v1 = a.bv_const(64, 99);
    child.set_reg(0, v1);
    child.set_reg(1, v1);
    child.frame_mut().ip = 5;

    assert_eq!(parent.reg(0), v0);
    assert_eq!(parent.frame().regs[1], None);
    assert_eq!(parent.frame().ip, 0);
    assert_eq!(child.reg(0), v1);
    assert_eq!(child.frame().ip, 5);
}

/// A deterministic LCG so the randomized test needs no external crates.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Plain deep-copied mirror of the fork-visible pieces of a [`State`].
#[derive(Clone)]
struct Model {
    arrays: Vec<TermId>,
    path: Vec<TermId>,
    trace: Vec<String>,
    proofs: Vec<((TermId, TermId), bool)>,
}

impl Model {
    fn of(s: &State) -> Model {
        Model {
            arrays: s.mem.objects.iter().map(|o| o.array).collect(),
            path: s.path.to_vec(),
            trace: s.trace.to_vec(),
            proofs: Vec::new(),
        }
    }

    fn check(&self, s: &State, who: usize) {
        let arrays: Vec<TermId> = s.mem.objects.iter().map(|o| o.array).collect();
        assert_eq!(
            arrays, self.arrays,
            "state {who}: memory diverged from model"
        );
        assert_eq!(
            s.path.to_vec(),
            self.path,
            "state {who}: path diverged from model"
        );
        assert_eq!(
            s.trace.to_vec(),
            self.trace,
            "state {who}: trace diverged from model"
        );
        for (k, v) in &self.proofs {
            assert_eq!(
                s.raw_proofs.get(k),
                Some(v),
                "state {who}: lost a proof entry"
            );
        }
        assert_eq!(
            s.raw_proofs.len(),
            self.proofs.len(),
            "state {who}: extra proof entries"
        );
    }
}

/// Randomized interleaving of forks and mutations across a growing family
/// of states, checked against independently maintained deep-copy models.
/// Any COW aliasing bug (a write through one handle visible through
/// another) diverges a state from its model.
#[test]
fn randomized_fork_mutate_matches_deep_copy_model() {
    const OBJS: u64 = 6;
    const OPS: usize = 400;
    const MAX_STATES: usize = 24;

    let mut a = TermArena::new();
    let root = fresh_state(&mut a, OBJS);
    let root_model = Model::of(&root);
    let mut family: Vec<(State, Model)> = vec![(root, root_model)];
    let mut rng = Lcg(0x5eed_1234_abcd_0042);

    for op in 0..OPS {
        let i = (rng.next() as usize) % family.len();
        match rng.next() % 5 {
            0 if family.len() < MAX_STATES => {
                // Fork: the child starts with an identical model.
                let (s, m) = &family[i];
                let child = s.fork();
                let cm = m.clone();
                family.push((child, cm));
            }
            1 => {
                let (s, m) = &mut family[i];
                let o = ObjectId((rng.next() % OBJS) as u32);
                poke(&mut a, s, o, rng.next() % 8, (op & 0xff) as u8);
                m.arrays[o.0 as usize] = s.mem.obj(o).array;
            }
            2 => {
                let (s, m) = &mut family[i];
                let t = a.var(&format!("c{op}"), Sort::Bool);
                s.assume(t);
                m.path.push(t);
            }
            3 => {
                let (s, m) = &mut family[i];
                let line = format!("bb{op}");
                s.trace_step(line.clone());
                m.trace.push(line);
            }
            _ => {
                let (s, m) = &mut family[i];
                let k1 = a.var(&format!("k{op}a"), Sort::Bool);
                let k2 = a.var(&format!("k{op}b"), Sort::Bool);
                let v = op % 2 == 0;
                s.raw_proofs.insert((k1, k2), v);
                m.proofs.push(((k1, k2), v));
            }
        }
        // Every state must still match its own model after every op —
        // this is where cross-handle leaks show up.
        for (who, (s, m)) in family.iter().enumerate() {
            m.check(s, who);
        }
    }
    assert!(family.len() > 4, "fork op never fired; test is vacuous");
}
