//! Persistent proof-cache behavior at the engine level: restart
//! round-trips must replay with a 100% query-hit rate, and entries written
//! under one engine/solver configuration must be invisible to runs under
//! another (the digest isolation that makes cross-config replay
//! impossible, not merely unlikely).

use tpot_engine::{EngineConfig, PotStatus, Verifier, VerifyOptions};
use tpot_ir::lower;

const SRC: &str = r#"
int counter;

int bump(int x) { return x + 1; }

void spec__bump(void) {
    any(int, v);
    assume(v >= 0 && v < 100);
    counter = bump(v);
    assert(counter >= 1);
}

void spec__also(void) {
    any(int, v);
    assume(v > 0 && v < 1000);
    assert(bump(v) > 1);
}
"#;

fn module() -> tpot_ir::Module {
    lower(&tpot_cfront::compile(SRC).unwrap()).unwrap()
}

fn cache_file(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!(
        "tpot_engine_proofcache_{tag}_{}.cache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn totals(results: &[tpot_engine::PotResult]) -> (u64, u64) {
    let hits = results.iter().map(|r| r.stats.cache_hits).sum();
    let misses = results.iter().map(|r| r.stats.cache_misses).sum();
    (hits, misses)
}

/// A fresh verifier over the unchanged module replays every solver query
/// from the on-disk cache: zero misses, i.e. a 100% hit rate — the engine
/// half of the daemon's `replayed` provenance tier.
#[test]
fn persistent_round_trip_replays_with_full_hit_rate() {
    let path = cache_file("roundtrip");
    let opts = VerifyOptions::new().jobs(1).cache_path(&path);

    let cold = Verifier::new(module()).verify(&opts);
    assert!(cold.iter().all(|r| matches!(r.status, PotStatus::Proved)));
    let (_, cold_misses) = totals(&cold);
    assert!(cold_misses > 0, "cold run must actually solve something");
    assert!(path.exists(), "verify() flushes the cache on exit");

    // "Restart": a brand-new verifier and module instance, same file.
    let warm = Verifier::new(module()).verify(&opts);
    assert!(warm.iter().all(|r| matches!(r.status, PotStatus::Proved)));
    let (warm_hits, warm_misses) = totals(&warm);
    assert_eq!(warm_misses, 0, "100% hit rate on the unchanged module");
    assert!(
        warm_hits > 0,
        "the hits must come from the persistent cache"
    );

    let _ = std::fs::remove_file(&path);
}

/// Entries written by a `TPOT_INCREMENTAL=1`-shaped run (incremental solve
/// sessions on — the configuration under which inprocessing-era
/// simplifications are recorded) must not be consumed by a
/// `TPOT_INCREMENTAL=0` run: the engine salt folds the toggle into the
/// cache key, so the second run sees only misses rather than replaying
/// outcomes produced under a different solver pipeline.
#[test]
fn non_incremental_run_cannot_consume_incremental_entries() {
    let path = cache_file("cfg_isolation");
    let opts = VerifyOptions::new().jobs(1).cache_path(&path);

    let inc_cfg = EngineConfig {
        incremental: true,
        ..EngineConfig::default()
    };
    let first = Verifier::with_config(module(), inc_cfg).verify(&opts);
    let (_, first_misses) = totals(&first);
    assert!(first_misses > 0);

    let plain_cfg = EngineConfig {
        incremental: false,
        ..EngineConfig::default()
    };
    let second = Verifier::with_config(module(), plain_cfg).verify(&opts);
    assert!(second.iter().all(|r| matches!(r.status, PotStatus::Proved)));
    let (second_hits, second_misses) = totals(&second);
    assert_eq!(
        second_hits, 0,
        "a non-incremental run must not hit entries written under the \
         incremental configuration"
    );
    assert!(second_misses > 0);

    // Sanity: re-running under the *same* non-incremental config does hit.
    let again_cfg = EngineConfig {
        incremental: false,
        ..EngineConfig::default()
    };
    let third = Verifier::with_config(module(), again_cfg).verify(&opts);
    let (third_hits, third_misses) = totals(&third);
    assert_eq!(third_misses, 0);
    assert!(third_hits > 0, "same config replays fine");

    let _ = std::fs::remove_file(&path);
}

/// The two pointer encodings must not share cache entries either (the
/// `int` vs `bv` ablation changes the query language entirely).
#[test]
fn addr_modes_do_not_share_cache_entries() {
    let path = cache_file("addr_mode_isolation");

    let int_opts = VerifyOptions::new().jobs(1).cache_path(&path);
    let first = Verifier::new(module()).verify(&int_opts);
    let (_, first_misses) = totals(&first);
    assert!(first_misses > 0);

    let bv_opts = VerifyOptions::new()
        .jobs(1)
        .cache_path(&path)
        .addr_mode(tpot_engine::AddrMode::Bv);
    let second = Verifier::new(module()).verify(&bv_opts);
    let (second_hits, _) = totals(&second);
    assert_eq!(second_hits, 0, "bv run must not replay int-mode entries");

    let _ = std::fs::remove_file(&path);
}
