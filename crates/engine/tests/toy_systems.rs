//! End-to-end verification of the paper's running examples (Fig. 1 and
//! Fig. 5) plus seeded-bug variants.

use tpot_engine::{PotStatus, Verifier, VerifyOptions, ViolationKind};
use tpot_ir::lower;

fn verify(src: &str) -> Vec<tpot_engine::PotResult> {
    let checked = tpot_cfront::compile(src).expect("compile");
    let module = lower(&checked).expect("lower");
    Verifier::new(module).verify(&VerifyOptions::new().jobs(1))
}

fn assert_all_proved(results: &[tpot_engine::PotResult]) {
    for r in results {
        match &r.status {
            PotStatus::Proved => {}
            PotStatus::Failed(vs) => {
                panic!("POT {} failed:\n{}", r.pot, vs[0]);
            }
            PotStatus::Error(e) => panic!("POT {} errored: {e}", r.pot),
        }
    }
}

/// Paper Figure 1: two integers whose sum is zero.
const FIG1: &str = r#"
int a, b;
void increment(int *p) { *p = *p + 1; }
void decrement(int *p) { *p = *p - 1; }
void init(void) { a = 0; b = 0; }
void transfer(void) {
  increment(&a);
  decrement(&b);
}
int get_sum(void) { return a + b; }

int inv__sum_zero(void) { return a + b == 0; }

void spec__transfer(void) {
  int old_a = a, old_b = b;
  transfer();
  assert(a == old_a + 1);
  assert(b == old_b - 1);
}
void spec__get_sum(void) {
  int res = get_sum();
  assert(res == 0);
}
"#;

#[test]
fn fig1_verifies() {
    let results = verify(FIG1);
    assert_eq!(results.len(), 2);
    assert_all_proved(&results);
}

#[test]
fn fig1_without_invariant_fails_get_sum() {
    // §3.2: dropping inv__sum_zero must make spec__get_sum fail with a
    // counterexample like (a: 1, b: 0).
    let src = FIG1.replace("int inv__sum_zero(void) { return a + b == 0; }", "");
    let checked = tpot_cfront::compile(&src).unwrap();
    let module = lower(&checked).unwrap();
    let v = Verifier::new(module);
    let r = v.verify_pot("spec__get_sum");
    match r.status {
        PotStatus::Failed(vs) => {
            assert!(vs.iter().any(|v| v.kind == ViolationKind::AssertFailed));
            // A counterexample with concrete values must be produced.
            assert!(vs[0].model.is_some());
        }
        other => panic!("expected failure, got {other:?}"),
    }
    // spec__transfer still verifies (needs no invariant).
    let r2 = v.verify_pot("spec__transfer");
    assert!(r2.status.is_proved(), "{:?}", r2.status);
}

#[test]
fn fig1_buggy_transfer_caught() {
    let src = FIG1.replace("decrement(&b);", "decrement(&a);");
    let checked = tpot_cfront::compile(&src).unwrap();
    let module = lower(&checked).unwrap();
    let v = Verifier::new(module);
    let r = v.verify_pot("spec__transfer");
    match r.status {
        PotStatus::Failed(_) => {}
        other => panic!("bug must be caught, got {other:?}"),
    }
}

/// Paper Figure 5: dynamic allocation and the naming abstraction.
const FIG5: &str = r#"
int *p1, *p2;
void init(void) {
  p1 = malloc(sizeof(int));
  p2 = malloc(sizeof(int));
}
void incr_p1(void) {
  *p1 = *p1 + 1;
}

int inv__alloc(void) {
  return names_obj(p1, int) && names_obj(p2, int);
}

void spec__incr_p1(void) {
  int old_p1 = *p1;
  int old_p2 = *p2;
  incr_p1();
  assert(*p1 == old_p1 + 1);
  assert(*p2 == old_p2);
}
"#;

#[test]
fn fig5_naming_verifies() {
    let checked = tpot_cfront::compile(FIG5).unwrap();
    let module = lower(&checked).unwrap();
    let v = Verifier::new(module);
    let r = v.verify_pot("spec__incr_p1");
    match &r.status {
        PotStatus::Proved => {}
        PotStatus::Failed(vs) => panic!("spec__incr_p1 failed: {}", vs[0]),
        PotStatus::Error(e) => panic!("error: {e}"),
    }
}

#[test]
fn fig5_init_establishes_invariant() {
    // The renaming proof of §4.1: malloc'd blocks get matched to the names
    // "p1"/"p2" existentially.
    let src = format!("{FIG5}\nvoid spec__init(void) {{ init(); }}\n");
    let checked = tpot_cfront::compile(&src).unwrap();
    let module = lower(&checked).unwrap();
    let v = Verifier::new(module);
    let r = v.verify_pot("spec__init");
    match &r.status {
        PotStatus::Proved => {}
        PotStatus::Failed(vs) => panic!("spec__init failed: {}", vs[0]),
        PotStatus::Error(e) => panic!("error: {e}"),
    }
}

#[test]
fn fig5_aliasing_hypothetical_would_fail() {
    // The §4.1 discussion: with is_allocated-style semantics (no
    // distinctness), the second assertion would be unprovable. Verify that
    // TPot's names imply non-aliasing by checking a POT that *relies* on it.
    let src = r#"
int *p1, *p2;
int inv__alloc(void) { return names_obj(p1, int) && names_obj(p2, int); }
void spec__distinct(void) {
  assert(p1 != p2);
}
"#;
    let results = verify(src);
    assert_all_proved(&results);
}

#[test]
fn leak_detected_when_invariant_omits_object() {
    // An invariant that names only p1 while init allocates two blocks: the
    // second block is leaked (theorem clause (C)).
    let src = r#"
int *p1, *p2;
void init(void) {
  p1 = malloc(sizeof(int));
  p2 = malloc(sizeof(int));
}
int inv__alloc(void) { return names_obj(p1, int); }
void spec__init(void) { init(); }
"#;
    let checked = tpot_cfront::compile(src).unwrap();
    let module = lower(&checked).unwrap();
    let v = Verifier::new(module);
    let r = v.verify_pot("spec__init");
    match r.status {
        PotStatus::Failed(vs) => {
            assert!(
                vs.iter().any(|v| v.kind == ViolationKind::MemoryLeak),
                "expected a leak, got: {}",
                vs[0]
            );
        }
        other => panic!("expected leak failure, got {other:?}"),
    }
}

#[test]
fn low_level_errors_detected() {
    // Out-of-bounds store caught without any assertion.
    let src = r#"
int arr[4];
void poke(int i) { arr[i] = 1; }
void spec__oob(void) {
  any(int, i);
  assume(i >= 0 && i <= 4);
  poke(i);
}
"#;
    let checked = tpot_cfront::compile(src).unwrap();
    let module = lower(&checked).unwrap();
    let v = Verifier::new(module);
    let r = v.verify_pot("spec__oob");
    match r.status {
        PotStatus::Failed(vs) => {
            assert!(vs.iter().any(|v| v.kind == ViolationKind::OutOfBounds));
        }
        other => panic!("expected OOB, got {other:?}"),
    }
    // With the correct bound it verifies.
    let ok = src.replace("i <= 4", "i < 4");
    let checked = tpot_cfront::compile(&ok).unwrap();
    let module = lower(&checked).unwrap();
    let r = Verifier::new(module).verify_pot("spec__oob");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
fn division_by_zero_detected() {
    let src = r#"
unsigned int d;
unsigned int f(unsigned int x) { return x / d; }
void spec__div(void) {
  any(unsigned int, x);
  unsigned int r = f(x);
  assert(r <= x);
}
"#;
    let checked = tpot_cfront::compile(src).unwrap();
    let module = lower(&checked).unwrap();
    let r = Verifier::new(module).verify_pot("spec__div");
    match r.status {
        PotStatus::Failed(vs) => {
            assert!(vs.iter().any(|v| v.kind == ViolationKind::DivisionByZero));
        }
        other => panic!("expected div-by-zero, got {other:?}"),
    }
}

#[test]
fn use_after_free_detected() {
    let src = r#"
int *p;
int inv__p(void) { return names_obj(p, int); }
void spec__uaf(void) {
  free(p);
  *p = 3;
}
"#;
    let checked = tpot_cfront::compile(src).unwrap();
    let module = lower(&checked).unwrap();
    let r = Verifier::new(module).verify_pot("spec__uaf");
    match r.status {
        PotStatus::Failed(vs) => {
            assert!(vs.iter().any(|v| v.kind == ViolationKind::UseAfterFree));
        }
        other => panic!("expected UAF, got {other:?}"),
    }
}
