//! `tpotd`: TPot verification as a service.
//!
//! A long-running server that accepts `tpot-api/v1` verify requests over
//! HTTP and serves them from a persistent, content-addressed proof cache,
//! re-running the symbolic-execution engine only for proof obligations the
//! cache cannot answer.
//!
//! # Architecture
//!
//! ```text
//!  client ──POST /v1/verify──▶ connection thread (one per request)
//!                                │ compile + lower, digest cones,
//!                                │ probe POT-outcome cache
//!                                │      hits → `cached` outcomes
//!                                ▼      misses ↓
//!                             job queue ──▶ scheduler thread
//!                                             │ coalesce jobs by
//!                                             │ (module, config) digest,
//!                                             │ union their POT sets
//!                                             ▼
//!                                  Verifier::verify_with_cache
//!                                  (shared path-scheduler pool +
//!                                   shared persistent query cache)
//! ```
//!
//! Multi-tenancy is by *request coalescing*: concurrent requests against
//! the same (module digest, config digest) pair are merged into a single
//! engine run whose POT set is the union of theirs, all sharing one
//! persistent query cache — so N clients verifying the same component cost
//! one verification. Distinct components simply batch through the
//! scheduler back to back.
//!
//! # Incremental re-verification
//!
//! The POT-outcome table is keyed by (cone digest, config digest), where
//! the cone digest folds the TIR of every function in the POT's
//! cone-of-influence ([`tpot_ir::diff::cone_digest`]). Editing a function
//! therefore invalidates exactly the POTs whose cones contain it: their
//! keys change and they miss the cache, while every other POT keeps
//! hitting. The daemon additionally remembers the last module submitted
//! under each request `label` and reports the function-level diff in
//! `changed_functions` — pure reporting; the invalidation itself is the
//! content addressing.
//!
//! Per-POT provenance in the response distinguishes the three service
//! tiers: `cached` (POT-outcome hit, no engine run), `replayed` (engine
//! re-ran but every solver query hit the persistent query cache), and
//! `solved` (at least one query reached a solver).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use std::sync::Condvar;
use tpot_api::{
    http, CacheProvenance, PotOutcome, PotStatusWire, TpotError, VerifyRequest, VerifyResponse,
    API_VERSION,
};
use tpot_engine::{outcome_digest, AddrMode, EngineConfig, PotResult, PotStatus, Verifier};
use tpot_ir::{diff, Module};
use tpot_obs::json::{self, Value};
use tpot_portfolio::{PotEntry, SharedCache};

/// Server configuration.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct DaemonConfig {
    /// Bind address (`127.0.0.1:7333` by default; port `0` picks a free
    /// port, reported by [`DaemonHandle::addr`]).
    pub addr: String,
    /// Proof-cache directory. `None` falls back to `TPOT_CACHE_DIR`, then
    /// to a purely in-memory cache (the service still coalesces and
    /// query-caches, but forgets everything on exit).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Cache size bound in MiB (`None` = `TPOT_CACHE_MAX_MB`, then the
    /// built-in 256 MiB default).
    pub cache_max_mb: Option<u64>,
    /// Default path-scheduler worker count for requests that don't set
    /// `jobs` (`0` = auto).
    pub default_jobs: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:7333".to_string(),
            cache_dir: None,
            cache_max_mb: None,
            default_jobs: 0,
        }
    }
}

impl DaemonConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the proof-cache directory.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the cache size bound in MiB.
    pub fn cache_max_mb(mut self, mb: u64) -> Self {
        self.cache_max_mb = Some(mb);
        self
    }

    /// Sets the default worker count.
    pub fn default_jobs(mut self, jobs: usize) -> Self {
        self.default_jobs = jobs;
        self
    }
}

/// A verify job the connection thread could not serve from the POT-outcome
/// cache: the subset of its POTs that must go through the engine.
struct Job {
    module: Arc<Module>,
    module_digest: u64,
    config: EngineConfig,
    config_digest: u64,
    pots: Vec<String>,
    reply: mpsc::Sender<HashMap<String, PotOutcome>>,
}

/// Shared server state.
struct Inner {
    cache: SharedCache,
    // The job queue pairs a std Mutex with a Condvar (the parking_lot shim
    // has no Condvar); everything else uses the workspace Mutex.
    queue: std::sync::Mutex<Vec<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Bound address, for the shutdown self-connect that wakes the
    /// blocking accept loop.
    addr: std::sync::OnceLock<SocketAddr>,
    /// Last module per diff key, for `changed_functions` reporting.
    last_modules: Mutex<HashMap<String, Arc<Module>>>,
    /// Compile memo: source digest → lowered module. Re-submissions of an
    /// unchanged translation unit (the steady state of a watch loop) skip
    /// the frontend entirely, leaving the warm path cache-probe-only.
    modules: Mutex<HashMap<u64, Arc<Module>>>,
    started: Instant,
    default_jobs: usize,
    // Service counters for `/v1/status`.
    requests: AtomicU64,
    pots_cached: AtomicU64,
    pots_replayed: AtomicU64,
    pots_solved: AtomicU64,
    coalesced_runs: AtomicU64,
}

/// A running daemon. Dropping the handle does *not* stop the server; call
/// [`DaemonHandle::shutdown`] (or POST `/v1/shutdown`).
pub struct DaemonHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    sched_thread: Option<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `host:port` string for [`tpot_api::http`] clients.
    pub fn addr_string(&self) -> String {
        self.addr.to_string()
    }

    /// True once a `POST /v1/shutdown` (or [`DaemonHandle::shutdown`]) has
    /// been observed; the binary polls this to know when to exit.
    pub fn is_shut_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Stops the server: the accept loop drains, the scheduler finishes
    /// in-flight work, and the proof cache is flushed to disk.
    pub fn shutdown(mut self) {
        self.inner.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sched_thread.take() {
            let _ = t.join();
        }
        let _ = self.inner.cache.lock().flush();
    }
}

/// Starts the daemon: binds, spawns the accept loop and the coalescing
/// scheduler, and returns immediately.
pub fn start(config: DaemonConfig) -> Result<DaemonHandle, TpotError> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| TpotError::io(format!("bind {} failed: {e}", config.addr)))?;
    let addr = listener.local_addr()?;

    let cache_dir = config
        .cache_dir
        .clone()
        .or_else(|| tpot_obs::config().cache_dir.clone());
    let mut cache = match &cache_dir {
        Some(d) => {
            let _ = std::fs::create_dir_all(d);
            tpot_portfolio::ProofCache::open(d.join("proofs.cache"))
                .map_err(|e| TpotError::io(format!("open proof cache in {d:?} failed: {e}")))?
        }
        None => tpot_portfolio::ProofCache::in_memory(),
    };
    if let Some(mb) = config.cache_max_mb.or(tpot_obs::config().cache_max_mb) {
        cache = cache.with_max_bytes(mb.saturating_mul(1 << 20));
    }

    let inner = Arc::new(Inner {
        cache: Arc::new(Mutex::new(cache)),
        queue: std::sync::Mutex::new(Vec::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        addr: std::sync::OnceLock::new(),
        last_modules: Mutex::new(HashMap::new()),
        modules: Mutex::new(HashMap::new()),
        started: Instant::now(),
        default_jobs: config.default_jobs,
        requests: AtomicU64::new(0),
        pots_cached: AtomicU64::new(0),
        pots_replayed: AtomicU64::new(0),
        pots_solved: AtomicU64::new(0),
        coalesced_runs: AtomicU64::new(0),
    });

    let _ = inner.addr.set(addr);
    let sched_inner = inner.clone();
    let sched_thread = std::thread::Builder::new()
        .name("tpotd-sched".into())
        .spawn(move || scheduler_loop(&sched_inner))
        .map_err(|e| TpotError::io(format!("spawn scheduler: {e}")))?;

    let accept_inner = inner.clone();
    let accept_thread = std::thread::Builder::new()
        .name("tpotd-accept".into())
        .spawn(move || accept_loop(listener, &accept_inner))
        .map_err(|e| TpotError::io(format!("spawn accept loop: {e}")))?;

    tpot_obs::obs_info!("daemon", "tpotd listening on {addr}");
    Ok(DaemonHandle {
        addr,
        inner,
        accept_thread: Some(accept_thread),
        sched_thread: Some(sched_thread),
    })
}

/// Blocking accept loop (no latency from polling); a shutdown wakes it
/// with a self-connect from [`Inner::request_shutdown`].
fn accept_loop(listener: TcpListener, inner: &Arc<Inner>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let inner = inner.clone();
                if let Ok(t) = std::thread::Builder::new()
                    .name("tpotd-conn".into())
                    .spawn(move || serve_connection(stream, &inner))
                {
                    conns.push(t);
                }
                conns.retain(|t| !t.is_finished());
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    for t in conns {
        let _ = t.join();
    }
}

impl Inner {
    /// Sets the shutdown flag and wakes both loops: the scheduler via its
    /// condvar, the accept loop via a throwaway self-connection.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        if let Some(addr) = self.addr.get() {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
    }
}

/// The coalescing scheduler: drains every queued job, groups by
/// (module digest, config digest), and runs each group as one engine
/// invocation over the union of the group's POT sets.
fn scheduler_loop(inner: &Arc<Inner>) {
    loop {
        let batch: Vec<Job> = {
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            while q.is_empty() && !inner.shutdown.load(Ordering::SeqCst) {
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            if q.is_empty() && inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::mem::take(&mut *q)
        };
        // Group by verification identity.
        let mut groups: HashMap<(u64, u64), Vec<Job>> = HashMap::new();
        for job in batch {
            groups
                .entry((job.module_digest, job.config_digest))
                .or_default()
                .push(job);
        }
        for ((_, config_digest), jobs) in groups {
            run_group(inner, config_digest, jobs);
        }
    }
}

/// Runs one coalesced group and distributes per-POT outcomes to each
/// requester, recording them in the persistent POT-outcome table.
fn run_group(inner: &Arc<Inner>, config_digest: u64, jobs: Vec<Job>) {
    if jobs.len() > 1 {
        inner.coalesced_runs.fetch_add(1, Ordering::Relaxed);
    }
    let module = jobs[0].module.clone();
    let config = jobs[0].config.clone();
    let mut union: Vec<String> = Vec::new();
    for job in &jobs {
        for p in &job.pots {
            if !union.contains(p) {
                union.push(p.clone());
            }
        }
    }
    let worker_jobs = inner.default_jobs;
    let cache = inner.cache.clone();
    let verifier = Verifier::with_config((*module).clone(), config);
    let opts = tpot_engine::VerifyOptions::new()
        .pots(union.clone())
        .jobs(worker_jobs);
    // A panicking engine run must not take the daemon down with it.
    let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        verifier.verify_with_cache(&opts, cache.clone())
    }));
    let outcomes: HashMap<String, PotOutcome> = match results {
        Ok(results) => results
            .iter()
            .map(|r| (r.pot.clone(), engine_outcome(inner, r)))
            .collect(),
        Err(_) => union
            .iter()
            .map(|p| {
                let mut o =
                    PotOutcome::new(p.clone(), PotStatusWire::Error, CacheProvenance::Solved);
                o.detail.push("engine panicked".to_string());
                (p.clone(), o)
            })
            .collect(),
    };
    // Record outcomes in the POT table (engine errors are not cached — a
    // resource-limit failure should retry next time).
    {
        let mut cache = inner.cache.lock();
        for (pot, o) in &outcomes {
            if o.status == PotStatusWire::Error {
                continue;
            }
            cache.put_pot(
                diff::cone_digest(&module, pot),
                config_digest,
                PotEntry {
                    proved: o.status == PotStatusWire::Proved,
                    detail: o.detail.clone(),
                },
            );
        }
        let _ = cache.flush();
    }
    for job in jobs {
        let subset: HashMap<String, PotOutcome> = job
            .pots
            .iter()
            .filter_map(|p| outcomes.get(p).map(|o| (p.clone(), o.clone())))
            .collect();
        let _ = job.reply.send(subset);
    }
}

/// Converts an engine [`PotResult`] into the wire outcome, deriving
/// provenance from the run's query-cache counters.
fn engine_outcome(inner: &Inner, r: &PotResult) -> PotOutcome {
    let (status, detail) = match &r.status {
        PotStatus::Proved => (PotStatusWire::Proved, Vec::new()),
        PotStatus::Failed(vs) => (
            PotStatusWire::Failed,
            vs.iter().map(|v| v.to_string()).collect(),
        ),
        PotStatus::Error(e) => (PotStatusWire::Error, vec![e.clone()]),
    };
    let provenance = if r.stats.cache_misses == 0 && r.stats.cache_hits > 0 {
        inner.pots_replayed.fetch_add(1, Ordering::Relaxed);
        CacheProvenance::Replayed
    } else {
        inner.pots_solved.fetch_add(1, Ordering::Relaxed);
        CacheProvenance::Solved
    };
    let mut o = PotOutcome::new(r.pot.clone(), status, provenance);
    o.duration_ms = r.duration.as_secs_f64() * 1e3;
    o.queries = r.stats.num_queries;
    o.cache_hits = r.stats.cache_hits;
    o.cache_misses = r.stats.cache_misses;
    o.detail = detail;
    o
}

fn serve_connection(mut stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let req = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    // Verification is slow; widen the write window for the response.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(3600)));
    let _ = stream.set_read_timeout(Some(Duration::from_secs(3600)));
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/verify") => {
            inner.requests.fetch_add(1, Ordering::Relaxed);
            let resp = handle_verify(inner, &req.body);
            let _ = http::write_response(
                &mut stream,
                200,
                "application/json",
                &resp.to_json().render(),
            );
        }
        ("GET", "/v1/status") => {
            let _ = http::write_response(
                &mut stream,
                200,
                "application/json",
                &status_json(inner).render(),
            );
        }
        ("POST", "/v1/shutdown") => {
            inner.request_shutdown();
            let _ = http::write_response(
                &mut stream,
                200,
                "application/json",
                "{\"ok\":true,\"shutting_down\":true}",
            );
        }
        (_, "/v1/verify") | (_, "/v1/status") | (_, "/v1/shutdown") => {
            let _ = http::write_response(
                &mut stream,
                405,
                "application/json",
                "{\"ok\":false,\"error\":{\"kind\":\"parse\",\"message\":\"method not allowed\"}}",
            );
        }
        _ => {
            let _ = http::write_response(
                &mut stream,
                404,
                "application/json",
                "{\"ok\":false,\"error\":{\"kind\":\"parse\",\"message\":\"no such endpoint\"}}",
            );
        }
    }
}

fn status_json(inner: &Inner) -> Value {
    let cache = inner.cache.lock().stats();
    Value::Obj(vec![
        ("api".into(), Value::Str(API_VERSION.into())),
        ("ok".into(), Value::Bool(true)),
        (
            "uptime_ms".into(),
            Value::Num(inner.started.elapsed().as_secs_f64() * 1e3),
        ),
        (
            "requests".into(),
            Value::Num(inner.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "pots_cached".into(),
            Value::Num(inner.pots_cached.load(Ordering::Relaxed) as f64),
        ),
        (
            "pots_replayed".into(),
            Value::Num(inner.pots_replayed.load(Ordering::Relaxed) as f64),
        ),
        (
            "pots_solved".into(),
            Value::Num(inner.pots_solved.load(Ordering::Relaxed) as f64),
        ),
        (
            "coalesced_runs".into(),
            Value::Num(inner.coalesced_runs.load(Ordering::Relaxed) as f64),
        ),
        ("cache".into(), cache.to_json()),
    ])
}

/// Serves one verify request end to end on the connection thread:
/// compile → diff-report → cache probe → (for misses) queue + wait →
/// assemble response.
fn handle_verify(inner: &Arc<Inner>, body: &str) -> VerifyResponse {
    let t0 = Instant::now();
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return VerifyResponse::err(TpotError::parse(format!("bad JSON: {e}"))),
    };
    let req = match VerifyRequest::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => return VerifyResponse::err(e),
    };

    // Resolve the translation unit.
    let source = if let Some(t) = &req.target {
        match tpot_targets::target(t) {
            Some(t) => t.full_source(),
            None => return VerifyResponse::err(TpotError::parse(format!("no such target {t:?}"))),
        }
    } else {
        req.source.clone().unwrap_or_default()
    };
    let source_digest = tpot_portfolio::fnv1a(source.as_bytes());
    let memoized = inner.modules.lock().get(&source_digest).cloned();
    let module = match memoized {
        Some(m) => m,
        None => {
            let m = match tpot_cfront::compile(&source)
                .map_err(TpotError::from)
                .and_then(|c| tpot_ir::lower(&c))
            {
                Ok(m) => Arc::new(m),
                Err(e) => return VerifyResponse::err(e),
            };
            let mut memo = inner.modules.lock();
            // Bound the memo: a daemon fed a stream of distinct sources
            // (e.g. a fuzzer) must not grow without limit.
            if memo.len() >= 64 {
                memo.clear();
            }
            memo.insert(source_digest, m.clone());
            m
        }
    };

    // Resolve the POT set, validating names.
    let all_pots = module.pot_names();
    let pots = match &req.pots {
        Some(list) => {
            for p in list {
                if !all_pots.contains(p) {
                    return VerifyResponse::err(TpotError::parse(format!("no such POT {p:?}")));
                }
            }
            list.clone()
        }
        None => all_pots,
    };

    // Engine config for this request.
    let mut config = EngineConfig::default();
    match req.addr_mode.as_deref() {
        Some("bv") => config.addr_mode = AddrMode::Bv,
        Some("int") => config.addr_mode = AddrMode::Int,
        _ => {}
    }
    let config_digest = outcome_digest(&config);
    let module_digest = diff::module_digest(&module);

    // Function-level diff against the previous submission under this key
    // (reporting only — invalidation is the content addressing).
    let changed_functions = {
        let mut last = inner.last_modules.lock();
        let key = req.diff_key();
        let changed = match last.get(&key) {
            Some(prev) if diff::module_digest(prev) != module_digest => {
                diff::diff_modules(prev, &module).touched()
            }
            _ => Vec::new(),
        };
        last.insert(key, module.clone());
        changed
    };

    // Probe the POT-outcome table; collect the misses.
    let mut outcomes: HashMap<String, PotOutcome> = HashMap::new();
    let mut misses: Vec<String> = Vec::new();
    {
        let mut cache = inner.cache.lock();
        for pot in &pots {
            let cone = diff::cone_digest(&module, pot);
            match cache.get_pot(cone, config_digest) {
                Some(entry) => {
                    inner.pots_cached.fetch_add(1, Ordering::Relaxed);
                    let status = if entry.proved {
                        PotStatusWire::Proved
                    } else {
                        PotStatusWire::Failed
                    };
                    let mut o = PotOutcome::new(pot.clone(), status, CacheProvenance::Cached);
                    o.detail = entry.detail;
                    outcomes.insert(pot.clone(), o);
                }
                None => misses.push(pot.clone()),
            }
        }
    }

    // Queue the misses for the coalescing scheduler and wait.
    if !misses.is_empty() {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push(Job {
                module: module.clone(),
                module_digest,
                config,
                config_digest,
                pots: misses,
                reply: tx,
            });
        }
        inner.queue_cv.notify_all();
        match rx.recv() {
            Ok(map) => outcomes.extend(map),
            Err(_) => {
                return VerifyResponse::err(TpotError::internal(
                    "scheduler dropped the request (shutting down?)",
                ))
            }
        }
    }

    let mut resp = VerifyResponse::ok();
    for pot in &pots {
        if let Some(o) = outcomes.remove(pot) {
            resp.pots.push(o);
        }
    }
    resp.module_digest = format!("{module_digest:016x}");
    resp.config_digest = format!("{config_digest:016x}");
    resp.changed_functions = changed_functions;
    resp.cache = inner.cache.lock().stats();
    resp.duration_ms = t0.elapsed().as_secs_f64() * 1e3;
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tpotd_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const SRC: &str = r#"
int counter;

int bump(int x) { return x + 1; }

void spec__bump(void) {
    any(int, v);
    assume(v >= 0 && v < 100);
    counter = bump(v);
    assert(counter >= 1);
}

void spec__zero(void) {
    any(int, v);
    assume(v > 0 && v < 1000);
    assert(bump(v) > 1);
}
"#;

    fn post_verify(addr: &str, req: &VerifyRequest) -> VerifyResponse {
        let (status, body) = http::post(addr, "/v1/verify", &req.to_json().render()).unwrap();
        assert_eq!(status, 200, "body: {body}");
        VerifyResponse::from_json(&json::parse(&body).unwrap()).unwrap()
    }

    #[test]
    fn verify_then_cached_replay() {
        let dir = test_dir("daemon_cached_replay");
        let handle = start(DaemonConfig::new().addr("127.0.0.1:0").cache_dir(&dir)).unwrap();
        let addr = handle.addr_string();

        let req = VerifyRequest::for_source(SRC).with_label("t");
        let first = post_verify(&addr, &req);
        assert!(first.error.is_none(), "{:?}", first.error);
        assert_eq!(first.pots.len(), 2);
        for p in &first.pots {
            assert_eq!(p.status, PotStatusWire::Proved);
            assert_ne!(p.provenance, CacheProvenance::Cached, "cold run");
        }

        // Same module again: everything comes straight from the POT table.
        let second = post_verify(&addr, &req);
        assert_eq!(second.pots.len(), 2);
        for p in &second.pots {
            assert_eq!(p.provenance, CacheProvenance::Cached);
            assert_eq!(p.status, PotStatusWire::Proved);
        }
        assert!(second.changed_functions.is_empty());
        handle.shutdown();
    }

    #[test]
    fn edit_invalidates_only_cone_touching_pots() {
        let dir = test_dir("daemon_incremental");
        let handle = start(DaemonConfig::new().addr("127.0.0.1:0").cache_dir(&dir)).unwrap();
        let addr = handle.addr_string();

        let req = VerifyRequest::for_source(SRC).with_label("inc");
        let first = post_verify(&addr, &req);
        assert!(first.error.is_none());

        // `spec__zero` does not touch `counter`; editing only the POT body
        // of `spec__bump` leaves spec__zero's cone digest intact.
        let edited = SRC.replace("assert(counter >= 1);", "assert(counter >= 0);");
        let req2 = VerifyRequest::for_source(edited).with_label("inc");
        let second = post_verify(&addr, &req2);
        assert!(second.error.is_none());
        assert_eq!(
            second.changed_functions,
            vec!["spec__bump".to_string()],
            "function-level diff reported"
        );
        let by_name: HashMap<_, _> = second.pots.iter().map(|p| (p.pot.as_str(), p)).collect();
        assert_ne!(
            by_name["spec__bump"].provenance,
            CacheProvenance::Cached,
            "edited POT re-verifies"
        );
        assert_eq!(
            by_name["spec__zero"].provenance,
            CacheProvenance::Cached,
            "untouched cone replays from the POT table"
        );
        handle.shutdown();
    }

    #[test]
    fn persistent_cache_survives_restart() {
        let dir = test_dir("daemon_restart");
        let req = VerifyRequest::for_source(SRC).with_label("r");
        {
            let handle = start(DaemonConfig::new().addr("127.0.0.1:0").cache_dir(&dir)).unwrap();
            let first = post_verify(&handle.addr_string(), &req);
            assert!(first.error.is_none());
            handle.shutdown();
        }
        {
            let handle = start(DaemonConfig::new().addr("127.0.0.1:0").cache_dir(&dir)).unwrap();
            let resp = post_verify(&handle.addr_string(), &req);
            for p in &resp.pots {
                assert_eq!(
                    p.provenance,
                    CacheProvenance::Cached,
                    "restarted daemon serves {} from disk",
                    p.pot
                );
            }
            handle.shutdown();
        }
    }

    #[test]
    fn config_digest_partitions_outcomes() {
        let dir = test_dir("daemon_cfg_partition");
        let handle = start(DaemonConfig::new().addr("127.0.0.1:0").cache_dir(&dir)).unwrap();
        let addr = handle.addr_string();

        let int_req = VerifyRequest::for_source(SRC).with_label("c");
        let first = post_verify(&addr, &int_req);
        assert!(first.error.is_none());

        // Same module under the bit-vector encoding: different config
        // digest, so nothing may come back `cached`.
        let bv_req = VerifyRequest::for_source(SRC)
            .with_label("c")
            .with_addr_mode("bv");
        let second = post_verify(&addr, &bv_req);
        assert!(second.error.is_none());
        assert_ne!(first.config_digest, second.config_digest);
        for p in &second.pots {
            assert_ne!(
                p.provenance,
                CacheProvenance::Cached,
                "{} must not hit across config digests",
                p.pot
            );
        }
        handle.shutdown();
    }

    #[test]
    fn status_and_errors() {
        let handle = start(DaemonConfig::new().addr("127.0.0.1:0")).unwrap();
        let addr = handle.addr_string();

        let (status, body) = http::get(&addr, "/v1/status").unwrap();
        assert_eq!(status, 200);
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("api").and_then(|x| x.as_str()), Some(API_VERSION));

        // Unknown endpoint.
        let (status, _) = http::get(&addr, "/v1/nope").unwrap();
        assert_eq!(status, 404);
        // Wrong method.
        let (status, _) = http::get(&addr, "/v1/verify").unwrap();
        assert_eq!(status, 405);
        // Malformed request body.
        let (status, body) = http::post(&addr, "/v1/verify", "{\"pots\":[]}").unwrap();
        assert_eq!(status, 200);
        let resp = VerifyResponse::from_json(&json::parse(&body).unwrap()).unwrap();
        assert!(resp.error.is_some());
        // Unknown target.
        let r = post_verify(&addr, &VerifyRequest::for_target("nonesuch"));
        assert!(r.error.is_some());
        // Unknown POT.
        let r = post_verify(
            &addr,
            &VerifyRequest::for_source(SRC).with_pots(["spec__nope"]),
        );
        assert!(r.error.is_some());
        handle.shutdown();
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let handle = start(DaemonConfig::new().addr("127.0.0.1:0")).unwrap();
        let addr = handle.addr_string();

        let mut threads = Vec::new();
        for _ in 0..4 {
            let addr = addr.clone();
            threads.push(std::thread::spawn(move || {
                let req = VerifyRequest::for_source(SRC);
                post_verify(&addr, &req)
            }));
        }
        for t in threads {
            let resp = t.join().unwrap();
            assert!(resp.error.is_none());
            assert_eq!(resp.pots.len(), 2);
            for p in &resp.pots {
                assert_eq!(p.status, PotStatusWire::Proved);
            }
        }
        handle.shutdown();
    }
}
