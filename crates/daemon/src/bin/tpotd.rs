//! `tpotd` — the TPot verification daemon.
//!
//! ```text
//! tpotd [--addr HOST:PORT] [--cache-dir DIR] [--cache-max-mb N] [--jobs N]
//! ```
//!
//! Serves `tpot-api/v1` over HTTP until it receives `POST /v1/shutdown`
//! (or the process is killed; the proof cache is flushed after every
//! engine batch, so a kill loses at most in-flight work).

use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: tpotd [--addr HOST:PORT] [--cache-dir DIR] [--cache-max-mb N] [--jobs N]\n\
         \n\
         defaults: --addr 127.0.0.1:7333, cache dir from TPOT_CACHE_DIR\n\
         (in-memory if unset), size bound from TPOT_CACHE_MAX_MB (256 MiB)."
    );
    std::process::exit(2)
}

fn main() {
    let mut config = tpot_daemon::DaemonConfig::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("tpotd: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => config = config.addr(take("--addr")),
            "--cache-dir" => config = config.cache_dir(take("--cache-dir")),
            "--cache-max-mb" => match take("--cache-max-mb").parse() {
                Ok(mb) => config = config.cache_max_mb(mb),
                Err(_) => usage(),
            },
            "--jobs" => match take("--jobs").parse() {
                Ok(j) => config = config.default_jobs(j),
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("tpotd: unknown flag {other:?}");
                usage()
            }
        }
    }
    let handle = match tpot_daemon::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tpotd: {e}");
            std::process::exit(1)
        }
    };
    println!("tpotd listening on {}", handle.addr());
    // The accept/scheduler threads own the service; park until the
    // shutdown endpoint stops them.
    while !handle.is_shut_down() {
        std::thread::sleep(Duration::from_millis(200));
    }
    handle.shutdown();
    println!("tpotd: shut down");
}
