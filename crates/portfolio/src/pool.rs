//! The persistent portfolio worker pool.
//!
//! The seed implementation spawned a fresh OS thread per racing instance per
//! query — thousands of thread spawns per POT. This module replaces that
//! with long-lived workers fed over MPMC channels: [`Portfolio`] submits one
//! [`Job`] per racing instance and workers reply on a per-query channel.
//! A process-wide [`WorkerPool::global`] pool (sized by `TPOT_POOL_THREADS`
//! or the core count) is shared by every portfolio, so multi-POT parallel
//! verification cannot oversubscribe the machine; tests can build private
//! pools with [`WorkerPool::new`] for deterministic scheduling.
//!
//! Cancellation is cooperative and two-level: a queued job whose cancel flag
//! is already set is skipped without solving, and a running solver polls the
//! same flag every 64 conflicts and aborts with `Unknown`.
//!
//! [`Portfolio`]: crate::Portfolio

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use tpot_obs::metrics::{LazyCounter, LazyHistogram};
use tpot_smt::{TermArena, TermId};
use tpot_solver::{SmtResult, SmtSolver, SolverConfig, SolverError};

static JOBS_RUN: LazyCounter = LazyCounter::new("portfolio.pool.jobs_run");
static JOBS_SKIPPED: LazyCounter = LazyCounter::new("portfolio.pool.jobs_skipped");
static QUEUE_WAIT_US: LazyHistogram = LazyHistogram::new("portfolio.pool.queue_wait_us");

/// One racing solver instance's unit of work.
pub struct Job {
    /// Instance configuration (including the shared cancel flag).
    pub cfg: SolverConfig,
    /// Cone-of-influence slice of the query (owned: the solver mutates it
    /// during preprocessing).
    pub arena: TermArena,
    /// Assertion roots, in slice coordinates.
    pub assertions: Vec<TermId>,
    /// Raced instances share this flag; the winner's receiver sets it.
    pub cancel: Arc<AtomicBool>,
    /// Per-query reply channel.
    pub reply: Sender<Reply>,
    /// Submission time, for queue-wait accounting.
    pub enqueued: Instant,
}

/// A worker's answer for one [`Job`].
pub struct Reply {
    /// Configuration name (portfolio win accounting).
    pub name: String,
    /// The solver result.
    pub result: Result<SmtResult, SolverError>,
    /// Time the job sat in the pool queue before a worker picked it up.
    pub queue_wait: Duration,
    /// True when the job was skipped because its cancel flag was already set
    /// at dequeue (the losing side of a settled race).
    pub cancelled: bool,
}

/// A fixed set of long-lived solver workers.
pub struct WorkerPool {
    tx: Sender<Job>,
    threads: usize,
    cancelled_jobs: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    /// Workers exit when the pool (and thus the job channel) is dropped.
    pub fn new(threads: usize) -> Arc<WorkerPool> {
        let threads = threads.max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let cancelled_jobs = Arc::new(AtomicU64::new(0));
        for i in 0..threads {
            let rx: Receiver<Job> = rx.clone();
            let cancelled = cancelled_jobs.clone();
            std::thread::Builder::new()
                .name(format!("tpot-worker-{i}"))
                .spawn(move || worker_loop(rx, cancelled))
                .expect("failed to spawn portfolio worker");
        }
        Arc::new(WorkerPool {
            tx,
            threads,
            cancelled_jobs,
        })
    }

    /// The process-wide shared pool. Sized by the `TPOT_POOL_THREADS` knob
    /// (via the typed [`tpot_obs::Config`]) when set, otherwise the
    /// available core count (minimum 2).
    pub fn global() -> Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let n = tpot_obs::config()
                    .pool_threads
                    .unwrap_or_else(|| {
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(4)
                    })
                    .max(2);
                WorkerPool::new(n)
            })
            .clone()
    }

    /// Enqueues a job. Never blocks (the queue is unbounded).
    pub fn submit(&self, job: Job) {
        let _ = self.tx.send(job);
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total jobs skipped because their cancel flag was set at dequeue.
    pub fn cancelled_jobs(&self) -> u64 {
        self.cancelled_jobs.load(Ordering::Relaxed)
    }
}

fn worker_loop(rx: Receiver<Job>, cancelled: Arc<AtomicU64>) {
    while let Ok(job) = rx.recv() {
        let Job {
            cfg,
            mut arena,
            assertions,
            cancel,
            reply,
            enqueued,
        } = job;
        let queue_wait = enqueued.elapsed();
        QUEUE_WAIT_US.observe(queue_wait.as_micros() as u64);
        let name = cfg.name.clone();
        if cancel.load(Ordering::Relaxed) {
            cancelled.fetch_add(1, Ordering::Relaxed);
            JOBS_SKIPPED.add(1);
            let _ = reply.send(Reply {
                name,
                result: Ok(SmtResult::Unknown),
                queue_wait,
                cancelled: true,
            });
            continue;
        }
        JOBS_RUN.add(1);
        let result = {
            let _span = tpot_obs::span_args("portfolio", "job", &[("instance", name.clone())]);
            SmtSolver::new(cfg).check(&mut arena, &assertions)
        };
        let _ = reply.send(Reply {
            name,
            result,
            queue_wait,
            cancelled: false,
        });
    }
}
