//! Solver portfolio racing and the persistent query cache (paper §4.4).
//!
//! The paper's TPot *races* 15 differently-configured Z3 instances and takes
//! the earliest result, and persists query results on disk so CI re-runs
//! only pay for queries affected by a change. This crate reproduces both:
//!
//! - [`Portfolio::check`] clones the term arena per racing instance, runs
//!   each configured [`SmtSolver`] on its own thread, takes the first
//!   definitive answer and cancels the losers via a shared flag.
//! - [`Portfolio::check_validated`] waits for *all* instances and checks
//!   they agree — the a-posteriori validation the paper recommends because
//!   "a solver portfolio is more often wrong than an individual solver"
//!   (§4.4). On a Sat result the winning model is additionally re-evaluated
//!   against the original assertions.
//! - [`PersistentCache`] keys Sat/Unsat outcomes by a stable fingerprint of
//!   the serialized SMT-LIB query. Models are not cached: a hit that needs a
//!   model re-solves, matching TPot's usage where cached hits dominate on
//!   unchanged code.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use tpot_smt::print::{query_fingerprint, to_smtlib};
use tpot_smt::{eval, TermArena, TermId, Value};
use tpot_solver::{SmtResult, SmtSolver, SolverConfig, SolverError};

/// Outcome stored in the persistent cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CachedOutcome {
    /// Query was satisfiable.
    Sat,
    /// Query was unsatisfiable.
    Unsat,
}

/// On-disk query cache (paper §4.4, "Persistent query caching").
#[derive(Debug, Default)]
pub struct PersistentCache {
    path: Option<PathBuf>,
    map: HashMap<u64, CachedOutcome>,
    dirty: bool,
    /// Statistics: cache hits.
    pub hits: u64,
    /// Statistics: cache misses.
    pub misses: u64,
}

impl PersistentCache {
    /// In-memory cache (not persisted) — still useful within one run.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Opens (or creates) a cache file.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let map = match std::fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str::<HashMap<String, CachedOutcome>>(&text)
                .unwrap_or_default()
                .into_iter()
                .filter_map(|(k, v)| k.parse::<u64>().ok().map(|k| (k, v)))
                .collect(),
            Err(_) => HashMap::new(),
        };
        Ok(PersistentCache {
            path: Some(path),
            map,
            dirty: false,
            hits: 0,
            misses: 0,
        })
    }

    /// Looks up a fingerprint.
    pub fn get(&mut self, fp: u64) -> Option<CachedOutcome> {
        let r = self.map.get(&fp).copied();
        if r.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        r
    }

    /// Records an outcome.
    pub fn put(&mut self, fp: u64, outcome: CachedOutcome) {
        self.map.insert(fp, outcome);
        self.dirty = true;
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Writes the cache to disk (no-op for in-memory caches).
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        if let Some(path) = &self.path {
            let as_strings: HashMap<String, CachedOutcome> =
                self.map.iter().map(|(k, v)| (k.to_string(), *v)).collect();
            std::fs::write(path, serde_json::to_string(&as_strings)?)?;
            self.dirty = false;
        }
        Ok(())
    }
}

impl Drop for PersistentCache {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Portfolio statistics.
#[derive(Clone, Debug, Default)]
pub struct PortfolioStats {
    /// Total queries issued (after the cache).
    pub queries: u64,
    /// Wins per configuration name.
    pub wins: HashMap<String, u64>,
}

/// A racing portfolio of SMT solver instances.
pub struct Portfolio {
    configs: Vec<SolverConfig>,
    /// Optional persistent cache consulted before racing.
    pub cache: Option<PersistentCache>,
    /// Statistics.
    pub stats: PortfolioStats,
}

impl Portfolio {
    /// Builds a portfolio from explicit configurations.
    pub fn new(configs: Vec<SolverConfig>) -> Self {
        assert!(!configs.is_empty(), "portfolio needs at least one instance");
        Portfolio {
            configs,
            cache: None,
            stats: PortfolioStats::default(),
        }
    }

    /// The default portfolio of `n` diversified instances.
    pub fn with_instances(n: usize) -> Self {
        Self::new(SolverConfig::portfolio(n))
    }

    /// A single-instance "portfolio" (ablation baseline).
    pub fn single() -> Self {
        Self::new(vec![SolverConfig::default()])
    }

    /// Attaches a persistent cache.
    pub fn with_cache(mut self, cache: PersistentCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Number of configured instances.
    pub fn num_instances(&self) -> usize {
        self.configs.len()
    }

    /// Checks satisfiability, racing all instances; the earliest definitive
    /// answer wins. `need_model = false` allows answering Sat/Unsat straight
    /// from the cache.
    ///
    /// Returns the result plus the serialized query text (the caller's
    /// serialization-time accounting wraps this call).
    pub fn check(
        &mut self,
        arena: &TermArena,
        assertions: &[TermId],
        need_model: bool,
    ) -> Result<SmtResult, SolverError> {
        let fp = query_fingerprint(&to_smtlib(arena, assertions));
        if !need_model {
            if let Some(cache) = &mut self.cache {
                match cache.get(fp) {
                    Some(CachedOutcome::Sat) => {
                        return Ok(SmtResult::Sat(tpot_smt::Model::new()))
                    }
                    Some(CachedOutcome::Unsat) => return Ok(SmtResult::Unsat),
                    None => {}
                }
            }
        }
        self.stats.queries += 1;
        let result = if self.configs.len() == 1 {
            let mut local = arena.clone();
            SmtSolver::new(self.configs[0].clone()).check(&mut local, assertions)?
        } else {
            self.race(arena, assertions)?
        };
        if let Some(cache) = &mut self.cache {
            match &result {
                SmtResult::Sat(_) => cache.put(fp, CachedOutcome::Sat),
                SmtResult::Unsat => cache.put(fp, CachedOutcome::Unsat),
                SmtResult::Unknown => {}
            }
        }
        Ok(result)
    }

    fn race(
        &mut self,
        arena: &TermArena,
        assertions: &[TermId],
    ) -> Result<SmtResult, SolverError> {
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<(String, Result<SmtResult, SolverError>)>();
        let n = self.configs.len();
        for cfg in &self.configs {
            let mut cfg = cfg.clone();
            cfg.sat.cancel = Some(cancel.clone());
            let tx = tx.clone();
            let mut local = arena.clone();
            let asserts: Vec<TermId> = assertions.to_vec();
            std::thread::spawn(move || {
                let name = cfg.name.clone();
                let r = SmtSolver::new(cfg).check(&mut local, &asserts);
                let _ = tx.send((name, r));
            });
        }
        drop(tx);
        let mut last: Option<Result<SmtResult, SolverError>> = None;
        for _ in 0..n {
            let Ok((name, r)) = rx.recv() else { break };
            match &r {
                Ok(SmtResult::Sat(_)) | Ok(SmtResult::Unsat) => {
                    cancel.store(true, Ordering::Relaxed);
                    *self.stats.wins.entry(name).or_insert(0) += 1;
                    return r;
                }
                _ => last = Some(r),
            }
        }
        last.unwrap_or(Ok(SmtResult::Unknown))
    }

    /// Runs *all* instances to completion and checks agreement, validating
    /// any model against the assertions (the paper's recommended CI
    /// validation job, §4.4).
    pub fn check_validated(
        &mut self,
        arena: &TermArena,
        assertions: &[TermId],
    ) -> Result<SmtResult, SolverError> {
        let mut results: Vec<SmtResult> = Vec::new();
        for cfg in self.configs.clone() {
            let mut local = arena.clone();
            results.push(SmtSolver::new(cfg).check(&mut local, assertions)?);
        }
        let mut saw_sat: Option<SmtResult> = None;
        let mut saw_unsat = false;
        for r in results {
            match r {
                SmtResult::Sat(m) => {
                    // Validate the model by concrete evaluation.
                    for &t in assertions {
                        let v = eval(arena, &m, t)
                            .map_err(|e| SolverError::Unsupported(format!("{e:?}")))?;
                        if v != Value::Bool(true) {
                            return Err(SolverError::Unsupported(
                                "model validation failed: solver bug detected".into(),
                            ));
                        }
                    }
                    saw_sat = Some(SmtResult::Sat(m));
                }
                SmtResult::Unsat => saw_unsat = true,
                SmtResult::Unknown => {}
            }
        }
        match (saw_sat, saw_unsat) {
            (Some(_), true) => Err(SolverError::Unsupported(
                "portfolio disagreement: solver bug detected".into(),
            )),
            (Some(s), false) => Ok(s),
            (None, true) => Ok(SmtResult::Unsat),
            (None, false) => Ok(SmtResult::Unknown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpot_smt::Sort;

    fn simple_query(arena: &mut TermArena, sat: bool) -> Vec<TermId> {
        let x = arena.var("x", Sort::BitVec(8));
        let c = arena.bv_const(8, 5);
        let eq = arena.eq(x, c);
        if sat {
            vec![eq]
        } else {
            let ne = arena.neq(x, c);
            vec![eq, ne]
        }
    }

    #[test]
    fn race_returns_first_answer() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, true);
        let mut p = Portfolio::with_instances(4);
        match p.check(&a, &q, true).unwrap() {
            SmtResult::Sat(m) => {
                assert_eq!(m.var("x"), Some(&Value::BitVec(8, 5)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.stats.queries, 1);
        assert_eq!(p.stats.wins.values().sum::<u64>(), 1);
    }

    #[test]
    fn race_unsat() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, false);
        let mut p = Portfolio::with_instances(3);
        assert!(p.check(&a, &q, false).unwrap().is_unsat());
    }

    #[test]
    fn validated_agreement() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, true);
        let mut p = Portfolio::with_instances(3);
        assert!(p.check_validated(&a, &q).unwrap().is_sat());
    }

    #[test]
    fn cache_avoids_resolving() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, false);
        let mut p = Portfolio::single().with_cache(PersistentCache::in_memory());
        assert!(p.check(&a, &q, false).unwrap().is_unsat());
        assert_eq!(p.stats.queries, 1);
        assert!(p.check(&a, &q, false).unwrap().is_unsat());
        assert_eq!(p.stats.queries, 1, "second query must hit the cache");
        let c = p.cache.as_ref().unwrap();
        assert_eq!(c.hits, 1);
    }

    #[test]
    fn persistent_cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tpot-cache-{}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        {
            let mut c = PersistentCache::open(&dir).unwrap();
            c.put(42, CachedOutcome::Unsat);
            c.flush().unwrap();
        }
        let mut c2 = PersistentCache::open(&dir).unwrap();
        assert_eq!(c2.get(42), Some(CachedOutcome::Unsat));
        assert_eq!(c2.get(43), None);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn model_needed_bypasses_cache() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, true);
        let mut p = Portfolio::single().with_cache(PersistentCache::in_memory());
        assert!(p.check(&a, &q, false).unwrap().is_sat());
        // Need a model: must re-solve even though the outcome is cached.
        match p.check(&a, &q, true).unwrap() {
            SmtResult::Sat(m) => assert!(m.var("x").is_some()),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.stats.queries, 2);
    }
}
