//! Solver portfolio racing and the persistent query cache (paper §4.4).
//!
//! The paper's TPot *races* 15 differently-configured Z3 instances and takes
//! the earliest result, and persists query results on disk so CI re-runs
//! only pay for queries affected by a change. This crate reproduces both,
//! with an engine-level performance pipeline the seed lacked:
//!
//! - **Cone-of-influence slicing**: instead of cloning the full (monotonically
//!   growing) term arena per racing instance, [`Portfolio::check`] ships each
//!   instance a [`TermArena::slice`] containing only the terms reachable from
//!   the assertions. Late queries in a POT run no longer pay
//!   O(all terms ever created × instances) of setup.
//! - **Persistent worker pool**: racing instances run on the long-lived
//!   [`WorkerPool`] (shared process-wide by default) instead of freshly
//!   spawned OS threads; losers observe a shared cancel flag — skipped
//!   outright if still queued, aborted at the next conflict-poll if running.
//! - [`Portfolio::check_validated`] runs *all* instances (concurrently, on
//!   the pool) and checks they agree — the a-posteriori validation the paper
//!   recommends because "a solver portfolio is more often wrong than an
//!   individual solver" (§4.4). A Sat model is re-evaluated against the
//!   original assertions.
//! - The persistent query cache ([`tpot_proofcache::ProofCache`]) keys
//!   Sat/Unsat outcomes by `(query fingerprint, solver-config digest)`. The
//!   digest ([`solver_config_digest`], plus an engine-level salt installed
//!   through [`Portfolio::with_config_salt`]) folds every semantically
//!   relevant knob — inprocessing, clause-DB tiering, conflict budgets,
//!   theory limits — so an outcome recorded under one solver configuration
//!   can never answer a query issued under a different one. The cache sits
//!   behind a `parking_lot::Mutex` so parallel POT verification shares one
//!   cache and every POT benefits from its siblings' hits; flushes are
//!   crash-safe (temp file + atomic rename) and merge with concurrent
//!   writers instead of overwriting them.
//!
//! Serialization happens exactly once per solver call: the engine serializes
//! for accounting, fingerprints the text, and passes the fingerprint to
//! [`Portfolio::check_fingerprinted`] — the portfolio itself never
//! re-serializes (its `stats.serializations` counter stays 0 on that path).

mod pool;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tpot_sat::{SatSink, SolveStats};
use tpot_smt::print::{query_fingerprint, to_smtlib};
use tpot_smt::{eval, TermArena, TermId, Value};
use tpot_solver::{SmtResult, SolveSession, SolverError};

use tpot_obs::metrics::LazyCounter;

pub use pool::{Job, Reply, WorkerPool};
pub use tpot_proofcache::{fnv1a, mix, CachedOutcome, PotEntry, ProofCache};

static CACHE_HITS: LazyCounter = LazyCounter::new("portfolio.cache.hits");
static CACHE_MISSES: LazyCounter = LazyCounter::new("portfolio.cache.misses");
static RACES: LazyCounter = LazyCounter::new("portfolio.races");
static SESSION_HITS: LazyCounter = LazyCounter::new("solver.session.hit");
static SESSION_MISSES: LazyCounter = LazyCounter::new("solver.session.miss");
static SESSION_REBLASTED: LazyCounter = LazyCounter::new("solver.session.reblasted_terms");

/// A shareable handle to a [`ProofCache`]. Parallel POT verification
/// clones one handle into every worker so POTs see each other's hits.
pub type SharedCache = Arc<Mutex<ProofCache>>;

/// Digest of one instance's semantically relevant configuration.
///
/// Folds every knob that changes *which answers the solver can give* —
/// inprocessing, clause-DB tiering, restart schedule, conflict and theory
/// budgets, core minimization, LIA branching — and deliberately excludes
/// pure identity/diversification state: seeds, names, sinks and cancel
/// flags never affect a Sat/Unsat verdict (an `Unknown` is never cached),
/// so keying on them would only fragment the cache across portfolio
/// members and CI runs.
pub fn solver_config_digest(cfg: &tpot_solver::SolverConfig) -> u64 {
    let mut h = fnv1a(b"tpot-solver-config/v1");
    h = mix(h, cfg.sat.inprocess as u64);
    h = mix(h, cfg.sat.lbd_core as u64);
    h = mix(h, cfg.sat.lbd_mid as u64);
    h = mix(h, cfg.sat.restart_base);
    h = mix(h, cfg.sat.conflict_limit.map_or(u64::MAX, |n| n));
    h = mix(h, cfg.sat.default_phase as u64);
    h = mix(h, cfg.lia.max_nodes);
    h = mix(h, cfg.lia.branch_lowest_index as u64);
    h = mix(h, cfg.max_theory_rounds);
    h = mix(h, cfg.minimize_cores as u64);
    h
}

/// Digest of a whole portfolio: the instance digests folded in order.
pub fn portfolio_config_digest(configs: &[tpot_solver::SolverConfig]) -> u64 {
    let mut h = fnv1a(b"tpot-portfolio-config/v1");
    h = mix(h, configs.len() as u64);
    for cfg in configs {
        h = mix(h, solver_config_digest(cfg));
    }
    h
}

/// Portfolio statistics.
#[derive(Clone, Debug, Default)]
pub struct PortfolioStats {
    /// Total queries issued (after the cache).
    pub queries: u64,
    /// Wins per configuration name.
    pub wins: HashMap<String, u64>,
    /// SMT-LIB serializations performed *inside* the portfolio. Stays 0 when
    /// callers pass a fingerprint (the engine's single-serialization path).
    pub serializations: u64,
    /// Terms in the caller's full arena, summed over solver-bound queries.
    pub terms_total: u64,
    /// Terms actually shipped to solvers (cone-of-influence slices).
    pub terms_shipped: u64,
    /// Approximate bytes of the caller's full arena, summed over queries.
    pub bytes_total: u64,
    /// Approximate bytes shipped per query after slicing.
    pub bytes_shipped: u64,
    /// Time jobs spent waiting in the worker-pool queue (summed over
    /// observed replies).
    pub queue_wait: Duration,
    /// Queries answered straight from the persistent proof cache (no
    /// solver ran). The provenance layer reads this: a POT whose engine run
    /// had `cache_misses == 0` and `cache_hits > 0` was *replayed*.
    pub cache_hits: u64,
    /// Queries that missed the proof cache and went to a solver.
    pub cache_misses: u64,
}

/// Broker statistics (see the `solver.session.*` metrics for the
/// process-wide view).
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionBrokerStats {
    /// Queries served by a session sharing a non-empty prefix.
    pub hits: u64,
    /// Queries that had to open a fresh session.
    pub misses: u64,
    /// Terms lowered to CNF across all session queries (cache misses in the
    /// bit-blaster). One-shot solving re-lowers a query's full cone every
    /// time; the ratio of this counter to the one-shot equivalent is the
    /// headline reuse number.
    pub reblasted_terms: u64,
    /// Session queries that fell back to one-shot solving (Unknown result,
    /// cancellation, or solver error).
    pub fallbacks: u64,
}

/// Keeps a small LRU set of [`SolveSession`]s keyed by their asserted
/// path-condition prefix.
///
/// Consecutive queries along one symbolic-execution path share a growing
/// assertion prefix; the broker routes each query to the live session with
/// the longest common prefix, pops the session down to the shared part, and
/// pushes only what is new — so the solver re-lowers (and re-learns) only
/// the delta. All sessions operate directly on the caller's term arena;
/// a broker must therefore only ever see queries from **one** arena (the
/// engine satisfies this structurally: one arena, one `QueryCtx`, one
/// portfolio per shard). `Clone` duplicates every live session — the
/// longest-common-prefix handoff when a stolen path migrates to another
/// worker: the clone must only ever be used with an arena that *extends*
/// the original broker's arena (the shard clone taken at steal time
/// satisfies this: arenas are append-only, so every `TermId` in a session
/// prefix stays valid in the extended arena).
/// Proof-effort attribution of the most recent Unsat session answer, with
/// the session's scope indices resolved back to the caller's path terms.
/// The engine maps these `TermId`s to provenance tags (POT premise, memory
/// axiom, path literal, …) for the per-POT blame report.
#[derive(Clone, Debug, Default)]
pub struct BrokerUnsat {
    /// Prefix terms whose activation literals are in the assumption core —
    /// certified participants in the contradiction.
    pub core_prefix: Vec<TermId>,
    /// Whether the query term itself is in the core.
    pub core_extra: bool,
    /// Conflict-participation count per prefix term (all zeros unless
    /// blame tracking is on).
    pub prefix_hits: Vec<(TermId, u64)>,
}

#[derive(Clone)]
pub struct SessionBroker {
    entries: Vec<SessionEntry>,
    clock: u64,
    cap: usize,
    /// Counters.
    pub stats: SessionBrokerStats,
    /// Attribution of the most recent Unsat answer produced through this
    /// broker (`None` after Sat/Unknown/fallback). Callers read and clear
    /// it synchronously after a query.
    pub last_unsat: Option<BrokerUnsat>,
}

#[derive(Clone)]
struct SessionEntry {
    session: SolveSession,
    /// Path terms currently asserted, one scope per term.
    prefix: Vec<TermId>,
    last_used: u64,
}

impl Default for SessionBroker {
    fn default() -> Self {
        SessionBroker::new(8)
    }
}

fn common_prefix_len(a: &[TermId], b: &[TermId]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

impl SessionBroker {
    /// Creates a broker holding at most `cap` live sessions.
    pub fn new(cap: usize) -> Self {
        SessionBroker {
            entries: Vec::new(),
            clock: 0,
            cap: cap.max(1),
            stats: SessionBrokerStats::default(),
            last_unsat: None,
        }
    }

    /// Re-points every live session's SAT instance at `sink`. Called on
    /// shard splits so a cloned broker's inherited sessions report their
    /// future work to the new shard, not the parent's sink.
    pub fn set_sink(&mut self, sink: Option<std::sync::Arc<SatSink>>) {
        for e in &mut self.entries {
            e.session.set_sink(sink.clone());
        }
    }

    /// Checks `prefix ∧ extra`, with `extra` passed as a transient
    /// assumption (the push → assume → check → pop shape branch feasibility
    /// wants, without the pop: the prefix scopes stay open for the next
    /// query).
    ///
    /// Returns `None` when the session answered `Unknown` or errored — the
    /// session is retired and the caller should fall back to one-shot
    /// solving.
    pub fn check(
        &mut self,
        config: &tpot_solver::SolverConfig,
        arena: &mut TermArena,
        prefix: &[TermId],
        extra: TermId,
        need_model: bool,
    ) -> Option<Result<SmtResult, SolverError>> {
        self.clock += 1;
        self.last_unsat = None;
        let mut best: Option<(usize, usize)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            let lcp = common_prefix_len(&e.prefix, prefix);
            if best.is_none_or(|(_, b)| lcp > b) {
                best = Some((i, lcp));
            }
        }
        let (idx, lcp) = match best {
            // Reuse only when something is actually shared; a zero-overlap
            // session would pay pops and GC for nothing.
            Some((i, l)) if l > 0 || prefix.is_empty() => {
                self.stats.hits += 1;
                SESSION_HITS.add(1);
                (i, l)
            }
            _ => {
                self.stats.misses += 1;
                SESSION_MISSES.add(1);
                if self.entries.len() >= self.cap {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("cap >= 1");
                    self.entries.swap_remove(lru);
                }
                self.entries.push(SessionEntry {
                    session: SolveSession::new(config.clone()),
                    prefix: Vec::new(),
                    last_used: self.clock,
                });
                (self.entries.len() - 1, 0)
            }
        };
        let _span = tpot_obs::span_args(
            "solver",
            "session",
            &[
                ("lcp", lcp.to_string()),
                ("prefix", prefix.len().to_string()),
            ],
        );
        let entry = &mut self.entries[idx];
        entry.last_used = self.clock;
        let before = entry.session.terms_blasted();
        let result = (|| {
            while entry.prefix.len() > lcp {
                entry.session.pop();
                entry.prefix.pop();
            }
            for &t in &prefix[lcp..] {
                entry.session.push();
                entry.session.assert(arena, t)?;
                entry.prefix.push(t);
            }
            entry.session.check_assuming(arena, &[extra], need_model)
        })();
        let delta = entry.session.terms_blasted() - before;
        self.stats.reblasted_terms += delta;
        SESSION_REBLASTED.add(delta);
        match result {
            Ok(SmtResult::Unknown) | Err(_) => {
                // Unknown may mean cancellation or a wedged instance; either
                // way the session's learned state is suspect value — retire
                // it and let the caller run one-shot.
                self.entries.swap_remove(idx);
                self.stats.fallbacks += 1;
                None
            }
            ok => {
                if matches!(ok, Ok(SmtResult::Unsat)) {
                    let entry = &self.entries[idx];
                    if let Some(attr) = &entry.session.last_unsat {
                        // Scope i guards prefix term i by construction (one
                        // push per prefix term, in order).
                        self.last_unsat = Some(BrokerUnsat {
                            core_prefix: attr
                                .core_scopes
                                .iter()
                                .filter_map(|&i| entry.prefix.get(i).copied())
                                .collect(),
                            core_extra: attr.core_extra,
                            prefix_hits: entry
                                .prefix
                                .iter()
                                .copied()
                                .zip(attr.scope_hits.iter().copied())
                                .collect(),
                        });
                    }
                }
                Some(ok)
            }
        }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Terms lowered to CNF across all live sessions' lifetimes. After a
    /// handoff clone this is the inherited blasting work the thief did
    /// *not* have to repeat; the scheduler reads it as the denominator of
    /// the handoff re-blast ratio.
    pub fn total_terms_blasted(&self) -> u64 {
        self.entries.iter().map(|e| e.session.terms_blasted()).sum()
    }

    /// Zeroes the per-broker counters (sessions keep their state). Shard
    /// clones call this so inherited counts are not double-attributed.
    pub fn reset_stats(&mut self) {
        self.stats = SessionBrokerStats::default();
    }
}

/// A racing portfolio of SMT solver instances.
pub struct Portfolio {
    configs: Vec<tpot_solver::SolverConfig>,
    /// Optional persistent cache consulted before racing. Shared: parallel
    /// POT drivers hand every portfolio the same handle.
    pub cache: Option<SharedCache>,
    /// Statistics.
    pub stats: PortfolioStats,
    /// Incremental solve sessions, used by [`Portfolio::check_incremental`]
    /// when the portfolio has exactly one configuration.
    pub sessions: SessionBroker,
    /// Attribution sink: every SAT solve this portfolio causes — through a
    /// session, a one-shot check, or a racing pool worker (the job's config
    /// carries the handle) — adds its exact counter delta here. One sink
    /// per execution shard makes per-POT/per-path attribution exact: the
    /// sum over all sinks equals the process-wide `sat.*` counter delta.
    sink: Arc<SatSink>,
    pool: Arc<WorkerPool>,
    /// Cache key half: [`portfolio_config_digest`] of the instance configs,
    /// optionally salted by the caller ([`Self::with_config_salt`]) with
    /// engine-level knobs the portfolio cannot see (address-mode encoding,
    /// incremental sessions). Every persistent-cache access is keyed
    /// `(query fingerprint, this digest)`.
    config_digest: u64,
}

impl Portfolio {
    /// Builds a portfolio from explicit configurations.
    pub fn new(mut configs: Vec<tpot_solver::SolverConfig>) -> Self {
        assert!(!configs.is_empty(), "portfolio needs at least one instance");
        let sink = Arc::new(SatSink::default());
        for cfg in &mut configs {
            cfg.sat.sink = Some(sink.clone());
        }
        let config_digest = portfolio_config_digest(&configs);
        Portfolio {
            configs,
            cache: None,
            stats: PortfolioStats::default(),
            sessions: SessionBroker::default(),
            sink,
            pool: WorkerPool::global(),
            config_digest,
        }
    }

    /// Mixes a caller-level salt into the cache-key digest. The engine
    /// passes a digest of the knobs *it* controls (address-mode encoding —
    /// which changes what the same TIR means as SMT — plus session mode),
    /// so cache entries can never cross an engine-configuration boundary
    /// either.
    pub fn with_config_salt(mut self, salt: u64) -> Self {
        self.config_digest = mix(self.config_digest, salt);
        self
    }

    /// The `(fingerprint, digest)` key half this portfolio caches under.
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// Cumulative SAT counters attributed to this portfolio's shard so far.
    /// Exact for sessions and one-shot checks; a raced loser cancelled
    /// after the final read reports late (the delta still lands here, so
    /// nothing is lost process-wide — it is attributed on the next read).
    pub fn sat_totals(&self) -> SolveStats {
        self.sink.load()
    }

    /// The default portfolio of `n` diversified instances.
    pub fn with_instances(n: usize) -> Self {
        Self::new(tpot_solver::SolverConfig::portfolio(n))
    }

    /// A single-instance "portfolio" (ablation baseline).
    pub fn single() -> Self {
        Self::new(vec![tpot_solver::SolverConfig::default()])
    }

    /// Attaches a private persistent cache.
    pub fn with_cache(self, cache: ProofCache) -> Self {
        self.with_shared_cache(Arc::new(Mutex::new(cache)))
    }

    /// Attaches a cache shared with other portfolios (parallel POT runs).
    pub fn with_shared_cache(mut self, cache: SharedCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs this portfolio's instances on a specific pool instead of the
    /// process-wide one (deterministic scheduling in tests).
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Number of configured instances.
    pub fn num_instances(&self) -> usize {
        self.configs.len()
    }

    /// Clones this portfolio for a stolen execution shard: same
    /// configurations, the *same* shared cache handle and worker pool, and
    /// a deep clone of the live solve sessions (the prefix handoff), but
    /// fresh counters — the thief's shard starts attribution at zero so
    /// per-shard stats sum correctly across the fleet.
    pub fn clone_for_shard(&self) -> Self {
        let mut sessions = self.sessions.clone();
        sessions.reset_stats();
        sessions.last_unsat = None;
        // A fresh attribution sink, installed both into the configs (future
        // sessions, one-shots, raced jobs) and into the inherited session
        // clones — the thief's work must land in the thief's sink.
        let sink = Arc::new(SatSink::default());
        sessions.set_sink(Some(sink.clone()));
        let mut configs = self.configs.clone();
        for cfg in &mut configs {
            cfg.sat.sink = Some(sink.clone());
        }
        Portfolio {
            configs,
            cache: self.cache.clone(),
            stats: PortfolioStats::default(),
            sessions,
            sink,
            pool: Arc::clone(&self.pool),
            config_digest: self.config_digest,
        }
    }

    /// Checks satisfiability, racing all instances; the earliest definitive
    /// answer wins. `need_model = false` allows answering Sat/Unsat straight
    /// from the cache.
    ///
    /// This convenience entry serializes the query to compute its cache
    /// fingerprint; callers that already serialized (the engine does, for
    /// Fig. 7 accounting) should call [`Portfolio::check_fingerprinted`]
    /// (Self::check_fingerprinted) to avoid double serialization.
    pub fn check(
        &mut self,
        arena: &TermArena,
        assertions: &[TermId],
        need_model: bool,
    ) -> Result<SmtResult, SolverError> {
        self.stats.serializations += 1;
        let fp = query_fingerprint(&to_smtlib(arena, assertions));
        self.check_fingerprinted(arena, assertions, need_model, fp)
    }

    /// [`check`](Self::check) with a caller-computed query fingerprint — the
    /// single-serialization fast path.
    pub fn check_fingerprinted(
        &mut self,
        arena: &TermArena,
        assertions: &[TermId],
        need_model: bool,
        fp: u64,
    ) -> Result<SmtResult, SolverError> {
        if !need_model {
            if let Some(cache) = &self.cache {
                let hit = cache.lock().get_query(fp, self.config_digest);
                match hit {
                    Some(CachedOutcome::Sat) => {
                        CACHE_HITS.add(1);
                        self.stats.cache_hits += 1;
                        return Ok(SmtResult::Sat(tpot_smt::Model::new()));
                    }
                    Some(CachedOutcome::Unsat) => {
                        CACHE_HITS.add(1);
                        self.stats.cache_hits += 1;
                        return Ok(SmtResult::Unsat);
                    }
                    None => {
                        CACHE_MISSES.add(1);
                        self.stats.cache_misses += 1;
                    }
                }
            }
        }
        self.stats.queries += 1;
        let (sliced, roots) = arena.slice(assertions);
        self.stats.terms_total += arena.len() as u64;
        self.stats.terms_shipped += sliced.len() as u64;
        self.stats.bytes_total += arena.approx_bytes() as u64;
        self.stats.bytes_shipped += sliced.approx_bytes() as u64;
        let result = if self.configs.len() == 1 {
            // No race: solve on the slice directly, no clone at all.
            let mut local = sliced;
            tpot_solver::SmtSolver::new(self.configs[0].clone()).check(&mut local, &roots)?
        } else {
            self.race(&sliced, &roots)?
        };
        if let Some(cache) = &self.cache {
            match &result {
                SmtResult::Sat(_) => {
                    cache
                        .lock()
                        .put_query(fp, self.config_digest, CachedOutcome::Sat)
                }
                SmtResult::Unsat => {
                    cache
                        .lock()
                        .put_query(fp, self.config_digest, CachedOutcome::Unsat)
                }
                SmtResult::Unknown => {}
            }
        }
        Ok(result)
    }

    /// Checks `prefix ∧ extra` through an incremental [`SolveSession`],
    /// falling back to the one-shot [`Portfolio::check_fingerprinted`]
    /// (Self::check_fingerprinted) path when sessions don't apply.
    ///
    /// The session path engages only for single-configuration portfolios —
    /// racing instances each keep private learned state, and a race's
    /// cancellation would poison a long-lived session — and only after the
    /// persistent cache misses (`fp` is the fingerprint of the full
    /// `prefix ∧ extra` query, identical to the one-shot path's, so cache
    /// entries are shared between both paths). Fallback triggers on session
    /// `Unknown` (resource limits or cancellation) and on solver errors.
    ///
    /// All sessions operate directly on `arena`; callers must pass the same
    /// arena for the lifetime of this portfolio (the engine does: one arena
    /// and one portfolio per POT).
    pub fn check_incremental(
        &mut self,
        arena: &mut TermArena,
        prefix: &[TermId],
        extra: TermId,
        need_model: bool,
        fp: u64,
    ) -> Result<SmtResult, SolverError> {
        let one_shot = |p: &mut Self, arena: &mut TermArena| {
            let mut q: Vec<TermId> = prefix.to_vec();
            q.push(extra);
            p.check_fingerprinted(arena, &q, need_model, fp)
        };
        if self.configs.len() != 1 {
            return one_shot(self, arena);
        }
        if !need_model {
            if let Some(cache) = &self.cache {
                let hit = cache.lock().get_query(fp, self.config_digest);
                match hit {
                    Some(CachedOutcome::Sat) => {
                        CACHE_HITS.add(1);
                        self.stats.cache_hits += 1;
                        return Ok(SmtResult::Sat(tpot_smt::Model::new()));
                    }
                    Some(CachedOutcome::Unsat) => {
                        CACHE_HITS.add(1);
                        self.stats.cache_hits += 1;
                        return Ok(SmtResult::Unsat);
                    }
                    None => {
                        CACHE_MISSES.add(1);
                        self.stats.cache_misses += 1;
                    }
                }
            }
        }
        let session_result =
            self.sessions
                .check(&self.configs[0], arena, prefix, extra, need_model);
        let Some(result) = session_result else {
            return one_shot(self, arena);
        };
        let result = result?;
        self.stats.queries += 1;
        if let Some(cache) = &self.cache {
            match &result {
                SmtResult::Sat(_) => {
                    cache
                        .lock()
                        .put_query(fp, self.config_digest, CachedOutcome::Sat)
                }
                SmtResult::Unsat => {
                    cache
                        .lock()
                        .put_query(fp, self.config_digest, CachedOutcome::Unsat)
                }
                SmtResult::Unknown => {}
            }
        }
        Ok(result)
    }

    /// Submits one job per configuration to the worker pool, each with its
    /// own clone of the (small) slice and a shared cancel flag.
    fn submit_all(
        &self,
        sliced: &TermArena,
        roots: &[TermId],
        cancel: &Arc<AtomicBool>,
    ) -> crossbeam::channel::Receiver<Reply> {
        let (tx, rx) = crossbeam::channel::unbounded::<Reply>();
        for cfg in &self.configs {
            let mut cfg = cfg.clone();
            cfg.sat.cancel = Some(cancel.clone());
            self.pool.submit(Job {
                cfg,
                arena: sliced.clone(),
                assertions: roots.to_vec(),
                cancel: cancel.clone(),
                reply: tx.clone(),
                enqueued: Instant::now(),
            });
        }
        rx
    }

    fn race(&mut self, sliced: &TermArena, roots: &[TermId]) -> Result<SmtResult, SolverError> {
        RACES.add(1);
        let _span = tpot_obs::span_args(
            "portfolio",
            "race",
            &[("instances", self.configs.len().to_string())],
        );
        let cancel = Arc::new(AtomicBool::new(false));
        let rx = self.submit_all(sliced, roots, &cancel);
        let mut last: Option<Result<SmtResult, SolverError>> = None;
        for _ in 0..self.configs.len() {
            let Ok(reply) = rx.recv() else { break };
            self.stats.queue_wait += reply.queue_wait;
            match &reply.result {
                Ok(SmtResult::Sat(_)) | Ok(SmtResult::Unsat) => {
                    cancel.store(true, Ordering::Relaxed);
                    if tpot_obs::tracing_enabled() {
                        tpot_obs::instant("portfolio", "win", &[("instance", reply.name.clone())]);
                    }
                    *self.stats.wins.entry(reply.name).or_insert(0) += 1;
                    return reply.result;
                }
                _ => last = Some(reply.result),
            }
        }
        // Nothing definitive: losers were all Unknown or errors.
        last.unwrap_or(Ok(SmtResult::Unknown))
    }

    /// Runs *all* instances to completion (concurrently, on the pool) and
    /// checks agreement, validating any model against the assertions (the
    /// paper's recommended CI validation job, §4.4).
    pub fn check_validated(
        &mut self,
        arena: &TermArena,
        assertions: &[TermId],
    ) -> Result<SmtResult, SolverError> {
        let (sliced, roots) = arena.slice(assertions);
        // Never set: validation wants every instance to finish.
        let cancel = Arc::new(AtomicBool::new(false));
        let rx = self.submit_all(&sliced, &roots, &cancel);
        let mut results: Vec<SmtResult> = Vec::new();
        for _ in 0..self.configs.len() {
            let Ok(reply) = rx.recv() else { break };
            self.stats.queue_wait += reply.queue_wait;
            results.push(reply.result?);
        }
        let mut saw_sat: Option<SmtResult> = None;
        let mut saw_unsat = false;
        for r in results {
            match r {
                SmtResult::Sat(m) => {
                    // Validate the model by concrete evaluation against the
                    // *original* arena and assertions (slicing keeps variable
                    // names and FuncIds stable, so the model transfers).
                    for &t in assertions {
                        let v = eval(arena, &m, t)
                            .map_err(|e| SolverError::Unsupported(format!("{e:?}")))?;
                        if v != Value::Bool(true) {
                            return Err(SolverError::Unsupported(
                                "model validation failed: solver bug detected".into(),
                            ));
                        }
                    }
                    saw_sat = Some(SmtResult::Sat(m));
                }
                SmtResult::Unsat => saw_unsat = true,
                SmtResult::Unknown => {}
            }
        }
        match (saw_sat, saw_unsat) {
            (Some(_), true) => Err(SolverError::Unsupported(
                "portfolio disagreement: solver bug detected".into(),
            )),
            (Some(s), false) => Ok(s),
            (None, true) => Ok(SmtResult::Unsat),
            (None, false) => Ok(SmtResult::Unknown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpot_smt::Sort;

    fn simple_query(arena: &mut TermArena, sat: bool) -> Vec<TermId> {
        let x = arena.var("x", Sort::BitVec(8));
        let c = arena.bv_const(8, 5);
        let eq = arena.eq(x, c);
        if sat {
            vec![eq]
        } else {
            let ne = arena.neq(x, c);
            vec![eq, ne]
        }
    }

    /// Pigeonhole principle php(holes+1, holes): unsat, and exponentially
    /// hard for CDCL — a reliable "slow query" for cancellation tests.
    fn pigeonhole(arena: &mut TermArena, holes: usize) -> Vec<TermId> {
        let pigeons = holes + 1;
        let p: Vec<Vec<TermId>> = (0..pigeons)
            .map(|i| {
                (0..holes)
                    .map(|j| arena.var(&format!("p_{i}_{j}"), Sort::Bool))
                    .collect()
            })
            .collect();
        let mut asserts = Vec::new();
        for row in &p {
            asserts.push(arena.or(row));
        }
        for i in 0..pigeons {
            for k in (i + 1)..pigeons {
                let pairs: Vec<(TermId, TermId)> =
                    p[i].iter().copied().zip(p[k].iter().copied()).collect();
                for (a, b) in pairs {
                    let both = arena.and(&[a, b]);
                    asserts.push(arena.not(both));
                }
            }
        }
        asserts
    }

    #[test]
    fn race_returns_first_answer() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, true);
        let mut p = Portfolio::with_instances(4);
        match p.check(&a, &q, true).unwrap() {
            SmtResult::Sat(m) => {
                assert_eq!(m.var("x"), Some(&Value::BitVec(8, 5)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.stats.queries, 1);
        assert_eq!(p.stats.wins.values().sum::<u64>(), 1);
    }

    #[test]
    fn race_unsat() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, false);
        let mut p = Portfolio::with_instances(3);
        assert!(p.check(&a, &q, false).unwrap().is_unsat());
    }

    #[test]
    fn validated_agreement() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, true);
        let mut p = Portfolio::with_instances(3);
        assert!(p.check_validated(&a, &q).unwrap().is_sat());
    }

    #[test]
    fn cache_avoids_resolving() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, false);
        let mut p = Portfolio::single().with_cache(ProofCache::in_memory());
        assert!(p.check(&a, &q, false).unwrap().is_unsat());
        assert_eq!(p.stats.queries, 1);
        assert!(p.check(&a, &q, false).unwrap().is_unsat());
        assert_eq!(p.stats.queries, 1, "second query must hit the cache");
        assert_eq!(p.stats.cache_hits, 1);
        assert_eq!(p.cache.as_ref().unwrap().lock().stats().hits, 1);
    }

    #[test]
    fn cache_entries_do_not_cross_config_digests() {
        // The soundness half of the persistent cache: an outcome recorded
        // under one solver configuration must be invisible to a portfolio
        // running a different one, even for a byte-identical query.
        let mut a = TermArena::new();
        let q = simple_query(&mut a, false);
        let cache: SharedCache = Arc::new(Mutex::new(ProofCache::in_memory()));
        let mut p1 = Portfolio::single().with_shared_cache(cache.clone());
        assert!(p1.check(&a, &q, false).unwrap().is_unsat());
        assert_eq!(p1.stats.cache_misses, 1);

        let mut inproc_off = tpot_solver::SolverConfig::default();
        inproc_off.sat.inprocess = !inproc_off.sat.inprocess;
        let mut p2 = Portfolio::new(vec![inproc_off]).with_shared_cache(cache.clone());
        assert_ne!(p1.config_digest(), p2.config_digest());
        assert!(p2.check(&a, &q, false).unwrap().is_unsat());
        assert_eq!(p2.stats.cache_hits, 0, "different digest must miss");
        assert_eq!(p2.stats.queries, 1, "and therefore re-solve");

        // An engine-level salt splits otherwise-identical portfolios too.
        let mut p3 = Portfolio::single()
            .with_config_salt(0xabcd)
            .with_shared_cache(cache.clone());
        assert!(p3.check(&a, &q, false).unwrap().is_unsat());
        assert_eq!(p3.stats.cache_hits, 0);

        // Same config as p1: clean hit.
        let mut p4 = Portfolio::single().with_shared_cache(cache);
        assert!(p4.check(&a, &q, false).unwrap().is_unsat());
        assert_eq!(p4.stats.cache_hits, 1);
        assert_eq!(p4.stats.queries, 0);
    }

    #[test]
    fn seed_diversity_shares_cache_entries() {
        // The completeness half: seeds (and names) are pure
        // diversification, so differently-seeded instances must share
        // entries rather than fragment the cache.
        let base = tpot_solver::SolverConfig::default();
        let mut reseeded = base.clone();
        reseeded.sat = reseeded.sat.with_seed(12345);
        reseeded.name = "reseeded".into();
        assert_eq!(solver_config_digest(&base), solver_config_digest(&reseeded));
        let mut inproc_off = base.clone();
        inproc_off.sat.inprocess = !inproc_off.sat.inprocess;
        assert_ne!(
            solver_config_digest(&base),
            solver_config_digest(&inproc_off)
        );
    }

    #[test]
    fn model_needed_bypasses_cache() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, true);
        let mut p = Portfolio::single().with_cache(ProofCache::in_memory());
        assert!(p.check(&a, &q, false).unwrap().is_sat());
        // Need a model: must re-solve even though the outcome is cached.
        match p.check(&a, &q, true).unwrap() {
            SmtResult::Sat(m) => assert!(m.var("x").is_some()),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.stats.queries, 2);
    }

    #[test]
    fn slicing_ships_fewer_terms() {
        let mut a = TermArena::new();
        // Junk terms outside the assertion cone: simulates the engine's
        // monotonically growing arena.
        for i in 0..100 {
            let v = a.var(&format!("junk{i}"), Sort::BitVec(32));
            let c = a.bv_const(32, i);
            a.eq(v, c);
        }
        let q = simple_query(&mut a, true);
        let mut p = Portfolio::with_instances(3);
        assert!(p.check(&a, &q, false).unwrap().is_sat());
        assert_eq!(p.stats.terms_total, a.len() as u64);
        assert!(
            p.stats.terms_shipped < p.stats.terms_total / 10,
            "slice should drop the junk cone: shipped {} of {}",
            p.stats.terms_shipped,
            p.stats.terms_total
        );
        assert!(p.stats.bytes_shipped < p.stats.bytes_total);
    }

    #[test]
    fn fingerprinted_path_never_serializes() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, false);
        let fp = query_fingerprint(&to_smtlib(&a, &q));
        let mut p = Portfolio::single();
        assert!(p.check_fingerprinted(&a, &q, false, fp).unwrap().is_unsat());
        assert_eq!(
            p.stats.serializations, 0,
            "the fingerprinted path must not re-serialize the query"
        );
        assert_eq!(p.stats.queries, 1);
    }

    #[test]
    fn incremental_reuses_sessions_along_a_path() {
        let mut a = TermArena::new();
        let x = a.var("ix", Sort::Int);
        let y = a.var("iy", Sort::Int);
        let c0 = a.int_const(0);
        let c10 = a.int_const(10);
        let sum = a.int_add2(x, y);
        let p0 = a.int_le(c0, x); // x >= 0
        let p1 = a.int_le(c0, y); // y >= 0
        let p2 = a.int_le(sum, c10); // x + y <= 10
        let mut p = Portfolio::single();
        // Growing path prefix, like branch feasibility along one path.
        let q1 = a.int_le(x, c10);
        let fp1 = query_fingerprint(&to_smtlib(&a, &[p0, q1]));
        assert!(p
            .check_incremental(&mut a, &[p0], q1, false, fp1)
            .unwrap()
            .is_sat());
        let c20 = a.int_const(20);
        let q2 = a.int_le(c20, sum); // x + y >= 20 contradicts p2
        let fp2 = query_fingerprint(&to_smtlib(&a, &[p0, p1, p2, q2]));
        assert!(p
            .check_incremental(&mut a, &[p0, p1, p2], q2, false, fp2)
            .unwrap()
            .is_unsat());
        // Same prefix again: pure session hit, nothing re-blasted.
        let before = p.sessions.stats.reblasted_terms;
        let q3 = a.int_le(c0, sum);
        let fp3 = query_fingerprint(&to_smtlib(&a, &[p0, p1, p2, q3]));
        assert!(p
            .check_incremental(&mut a, &[p0, p1, p2], q3, false, fp3)
            .unwrap()
            .is_sat());
        assert!(p.sessions.stats.hits >= 2);
        assert_eq!(p.sessions.len(), 1, "one path, one session");
        let delta = p.sessions.stats.reblasted_terms - before;
        assert!(
            delta <= 3,
            "repeat prefix must not re-blast (delta {delta})"
        );
    }

    #[test]
    fn incremental_pops_to_shared_prefix() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(8));
        let c1 = a.bv_const(8, 1);
        let c2 = a.bv_const(8, 2);
        let c3 = a.bv_const(8, 3);
        let p0 = a.bv_ult(c1, x); // x > 1
        let br_a = a.eq(x, c2);
        let br_b = a.eq(x, c3);
        let t = a.tru();
        let mut p = Portfolio::single();
        let fp = |a: &TermArena, q: &[TermId]| query_fingerprint(&to_smtlib(a, q));
        // Branch A then sibling branch B: the broker pops A, pushes B.
        let f1 = fp(&a, &[p0, br_a, t]);
        assert!(p
            .check_incremental(&mut a, &[p0, br_a], t, false, f1)
            .unwrap()
            .is_sat());
        let f2 = fp(&a, &[p0, br_b, t]);
        assert!(p
            .check_incremental(&mut a, &[p0, br_b], t, false, f2)
            .unwrap()
            .is_sat());
        assert_eq!(p.sessions.len(), 1, "sibling branches share one session");
        // Contradictory sibling is still answered correctly after the pop.
        let ne = a.neq(x, c3);
        let f3 = fp(&a, &[p0, br_b, ne]);
        assert!(p
            .check_incremental(&mut a, &[p0, br_b], ne, false, f3)
            .unwrap()
            .is_unsat());
    }

    #[test]
    fn incremental_matches_oneshot_outcomes() {
        // The same queries through sessions and through plain check must
        // agree (spot check; the fuzzer's incremental-vs-oneshot mode does
        // this at scale).
        let mut a = TermArena::new();
        let x = a.var("ix", Sort::Int);
        let c0 = a.int_const(0);
        let c5 = a.int_const(5);
        let le = a.int_le(x, c0);
        let ge = a.int_le(c5, x);
        let disj = a.or2(le, ge);
        let c3 = a.int_const(3);
        let eq3 = a.eq(x, c3);
        let c7 = a.int_const(7);
        let eq7 = a.eq(x, c7);
        let cases: Vec<(Vec<TermId>, TermId)> =
            vec![(vec![disj], eq3), (vec![disj], eq7), (vec![], disj)];
        let mut inc = Portfolio::single();
        for (prefix, extra) in cases {
            let mut full = prefix.clone();
            full.push(extra);
            let fp = query_fingerprint(&to_smtlib(&a, &full));
            let r_inc = inc
                .check_incremental(&mut a, &prefix, extra, true, fp)
                .unwrap();
            let r_one = Portfolio::single().check(&a, &full, true).unwrap();
            assert_eq!(
                r_inc.is_sat(),
                r_one.is_sat(),
                "session/one-shot disagree on {full:?}"
            );
            assert_eq!(r_inc.is_unsat(), r_one.is_unsat());
        }
    }

    #[test]
    fn incremental_racing_portfolio_falls_back_to_oneshot() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, false);
        let (prefix, extra) = (&q[..1], q[1]);
        let fp = query_fingerprint(&to_smtlib(&a, &q));
        let mut p = Portfolio::with_instances(3);
        assert!(p
            .check_incremental(&mut a, prefix, extra, false, fp)
            .unwrap()
            .is_unsat());
        assert!(
            p.sessions.is_empty(),
            "racing portfolios must not open sessions"
        );
        assert_eq!(p.stats.queries, 1);
    }

    #[test]
    fn incremental_shares_cache_with_oneshot() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, false);
        let fp = query_fingerprint(&to_smtlib(&a, &q));
        let mut p = Portfolio::single().with_cache(ProofCache::in_memory());
        assert!(p.check_fingerprinted(&a, &q, false, fp).unwrap().is_unsat());
        // The cached one-shot outcome answers the incremental call without
        // ever opening a session.
        assert!(p
            .check_incremental(&mut a, &q[..1], q[1], false, fp)
            .unwrap()
            .is_unsat());
        assert!(p.sessions.is_empty());
        assert_eq!(p.stats.queries, 1);
        assert_eq!(p.stats.cache_hits, 1);
    }

    #[test]
    fn sink_sees_oneshot_incremental_and_raced_work() {
        let mut a = TermArena::new();
        let q = simple_query(&mut a, false);
        // One-shot single instance.
        let mut p = Portfolio::single();
        assert!(p.check(&a, &q, false).unwrap().is_unsat());
        let t1 = p.sat_totals();
        assert!(t1.solves >= 1, "one-shot solve must be attributed: {t1:?}");
        // Incremental session on the same portfolio adds to the same sink.
        let t = a.tru();
        let fp = query_fingerprint(&to_smtlib(&a, &[q[0], t]));
        assert!(p
            .check_incremental(&mut a, &q[..1], t, false, fp)
            .unwrap()
            .is_sat());
        assert!(p.sat_totals().solves > t1.solves);
        // Raced instances report through the job configs' shared handle.
        let mut r = Portfolio::with_instances(3);
        assert!(r.check(&a, &q, false).unwrap().is_unsat());
        assert!(r.sat_totals().solves >= 1);
    }

    #[test]
    fn shard_clone_gets_a_fresh_sink() {
        let mut a = TermArena::new();
        let x = a.var("ix", Sort::Int);
        let c0 = a.int_const(0);
        let p0 = a.int_le(c0, x);
        let t = a.tru();
        let mut parent = Portfolio::single();
        let fp = query_fingerprint(&to_smtlib(&a, &[p0, t]));
        assert!(parent
            .check_incremental(&mut a, &[p0], t, false, fp)
            .unwrap()
            .is_sat());
        let parent_before = parent.sat_totals();
        assert!(parent_before.solves >= 1);
        let mut child = parent.clone_for_shard();
        assert!(child.sat_totals().is_zero(), "thief starts at zero");
        // The inherited session clone reports to the child's sink now.
        let c5 = a.int_const(5);
        let ge5 = a.int_le(c5, x);
        let fp2 = query_fingerprint(&to_smtlib(&a, &[p0, ge5]));
        assert!(child
            .check_incremental(&mut a, &[p0], ge5, false, fp2)
            .unwrap()
            .is_sat());
        assert!(child.sat_totals().solves >= 1);
        assert_eq!(
            parent.sat_totals().solves,
            parent_before.solves,
            "child work must not leak into the parent's sink"
        );
    }

    #[test]
    fn incremental_unsat_records_broker_attribution() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(8));
        let y = a.var("y", Sort::BitVec(8));
        let c1 = a.bv_const(8, 1);
        let c3 = a.bv_const(8, 3);
        let y1 = a.eq(y, c1); // irrelevant prefix term
        let br = a.eq(x, c3);
        let ne = a.neq(x, c3);
        let mut p = Portfolio::single();
        let fp = query_fingerprint(&to_smtlib(&a, &[y1, br, ne]));
        assert!(p
            .check_incremental(&mut a, &[y1, br], ne, false, fp)
            .unwrap()
            .is_unsat());
        let attr = p.sessions.last_unsat.clone().expect("unsat sets blame");
        assert!(
            attr.core_prefix.contains(&br),
            "x = 3 must be in the core: {attr:?}"
        );
        assert!(
            !attr.core_prefix.contains(&y1),
            "irrelevant y prefix must not be blamed: {attr:?}"
        );
        assert!(attr.core_extra, "the query term is half the contradiction");
        assert_eq!(attr.prefix_hits.len(), 2);
        // A Sat query clears the stash.
        let t = a.tru();
        let fp2 = query_fingerprint(&to_smtlib(&a, &[y1, br, t]));
        assert!(p
            .check_incremental(&mut a, &[y1, br], t, false, fp2)
            .unwrap()
            .is_sat());
        assert!(p.sessions.last_unsat.is_none());
    }

    #[test]
    fn broker_evicts_least_recently_used() {
        let mut a = TermArena::new();
        let mut broker = SessionBroker::new(2);
        let cfg = tpot_solver::SolverConfig::default();
        let t = a.tru();
        let mut prefixes = Vec::new();
        for i in 0..3 {
            let v = a.var(&format!("b{i}"), Sort::Bool);
            prefixes.push(vec![v]);
        }
        for pfx in &prefixes {
            let r = broker.check(&cfg, &mut a, pfx, t, false).unwrap().unwrap();
            assert!(r.is_sat());
        }
        assert_eq!(broker.len(), 2, "cap must hold");
        assert_eq!(broker.stats.misses, 3, "disjoint prefixes never hit");
    }

    #[test]
    fn pool_skips_jobs_cancelled_while_queued() {
        let pool = WorkerPool::new(1);
        let cancel = Arc::new(AtomicBool::new(true)); // already settled
        let (tx, rx) = crossbeam::channel::unbounded::<Reply>();
        let mut arena = TermArena::new();
        let q = simple_query(&mut arena, true);
        for _ in 0..4 {
            pool.submit(Job {
                cfg: tpot_solver::SolverConfig::default(),
                arena: arena.clone(),
                assertions: q.clone(),
                cancel: cancel.clone(),
                reply: tx.clone(),
                enqueued: Instant::now(),
            });
        }
        for _ in 0..4 {
            let reply = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("cancelled job must still reply");
            assert!(reply.cancelled);
            assert!(matches!(reply.result, Ok(SmtResult::Unknown)));
        }
        assert_eq!(pool.cancelled_jobs(), 4);
    }

    #[test]
    fn cancel_aborts_running_solver_promptly() {
        // One worker, four hard pigeonhole jobs sharing a cancel flag. The
        // worker starts job 1; we set the flag while it runs. The solver's
        // conflict-poll aborts it and the remaining jobs are skipped at
        // dequeue — so the total wall clock stays far below the time four
        // uncancelled php(10,9) solves would take.
        let pool = WorkerPool::new(1);
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = crossbeam::channel::unbounded::<Reply>();
        let mut arena = TermArena::new();
        let q = pigeonhole(&mut arena, 9);
        for _ in 0..4 {
            let mut cfg = tpot_solver::SolverConfig::default();
            cfg.sat.cancel = Some(cancel.clone());
            pool.submit(Job {
                cfg,
                arena: arena.clone(),
                assertions: q.clone(),
                cancel: cancel.clone(),
                reply: tx.clone(),
                enqueued: Instant::now(),
            });
        }
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(100));
        cancel.store(true, Ordering::Relaxed);
        let mut unknowns = 0;
        for _ in 0..4 {
            let reply = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("cancelled race must drain all replies");
            match reply.result {
                Ok(SmtResult::Unknown) => unknowns += 1,
                Ok(SmtResult::Unsat) => {} // solved before the flag flipped
                other => panic!("unexpected reply: {other:?}"),
            }
        }
        assert!(unknowns >= 3, "queued losers must be skipped, not solved");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "cancellation failed to bound race wall-clock: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn race_winner_cancels_queued_losers() {
        // Eight instances race a ~300ms query on two workers. When the
        // winner returns, at most one other job is mid-solve (it aborts at
        // the next conflict poll); the rest are still queued and must be
        // skipped at dequeue, not solved. Without cancellation the race
        // would serialize all eight solves over two workers.
        let pool = WorkerPool::new(2);
        let mut a = TermArena::new();
        let q = pigeonhole(&mut a, 8);
        let mut p = Portfolio::with_instances(8).with_pool(pool.clone());
        let start = Instant::now();
        assert!(p.check(&a, &q, false).unwrap().is_unsat());
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "race wall-clock not bounded: {:?}",
            start.elapsed()
        );
        // The worker threads drain the queue after `check` returns; wait for
        // the skipped losers to be counted.
        let deadline = Instant::now() + Duration::from_secs(30);
        while pool.cancelled_jobs() < 4 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            pool.cancelled_jobs() >= 4,
            "queued losers must be skipped without solving (got {})",
            pool.cancelled_jobs()
        );
    }
}
