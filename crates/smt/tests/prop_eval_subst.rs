//! Property tests for `subst` and `eval` (and the print → reparse cycle):
//!
//! 1. Substitution and evaluation commute:
//!    `eval(t[x := s], m)  ==  eval(t, m[x := eval(s, m)])`.
//! 2. Printing → reparsing is semantics-preserving and becomes
//!    *textually* stable after one round: terms are rebuilt through the
//!    simplifying builders on parse, so the first round may normalize
//!    (commutative-operand sorting keys on arena-local TermIds), but the
//!    normalized form must reprint identically — that is what makes
//!    `query_fingerprint` a usable persistent-cache key across processes.
//!
//! The generator is deliberately tiny (bool/bv/int, no arrays or UFs):
//! these are *algebraic* properties of the term layer; the fuzz crate
//! covers the full fragment end-to-end.

use std::collections::HashMap;

use tpot_smt::print::{query_fingerprint, to_smtlib};
use tpot_smt::subst::{free_vars, substitute};
use tpot_smt::{eval, parse_script, Model, Sort, TermArena, TermId, Value};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64*; plenty for test-case generation.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const W: u32 = 8;

fn vars(a: &mut TermArena) -> Vec<TermId> {
    vec![
        a.var("pb0", Sort::Bool),
        a.var("pb1", Sort::Bool),
        a.var("pv0", Sort::BitVec(W)),
        a.var("pv1", Sort::BitVec(W)),
        a.var("pi0", Sort::Int),
        a.var("pi1", Sort::Int),
    ]
}

fn gen_sorted(a: &mut TermArena, rng: &mut Rng, sort: &Sort, depth: u32) -> TermId {
    match sort {
        Sort::Bool => gen_bool(a, rng, depth),
        Sort::BitVec(_) => gen_bv(a, rng, depth),
        Sort::Int => gen_int(a, rng, depth),
        Sort::Array(..) => unreachable!("generator is scalar-only"),
    }
}

fn gen_bool(a: &mut TermArena, rng: &mut Rng, depth: u32) -> TermId {
    if depth == 0 {
        return match rng.below(3) {
            0 => a.var("pb0", Sort::Bool),
            1 => a.var("pb1", Sort::Bool),
            _ => a.bool_const(rng.below(2) == 0),
        };
    }
    let d = depth - 1;
    match rng.below(10) {
        0 => {
            let x = gen_bool(a, rng, d);
            a.not(x)
        }
        1 | 2 => {
            let x = gen_bool(a, rng, d);
            let y = gen_bool(a, rng, d);
            a.and2(x, y)
        }
        3 => {
            let x = gen_bool(a, rng, d);
            let y = gen_bool(a, rng, d);
            a.or2(x, y)
        }
        4 => {
            let x = gen_bool(a, rng, d);
            let y = gen_bool(a, rng, d);
            a.xor(x, y)
        }
        5 => {
            let x = gen_bool(a, rng, d);
            let y = gen_bool(a, rng, d);
            a.implies(x, y)
        }
        6 => {
            let x = gen_bv(a, rng, d);
            let y = gen_bv(a, rng, d);
            if rng.below(2) == 0 {
                a.bv_ult(x, y)
            } else {
                a.bv_sle(x, y)
            }
        }
        7 => {
            let x = gen_int(a, rng, d);
            let y = gen_int(a, rng, d);
            if rng.below(2) == 0 {
                a.int_le(x, y)
            } else {
                a.int_lt(x, y)
            }
        }
        8 => {
            let x = gen_bv(a, rng, d);
            let y = gen_bv(a, rng, d);
            a.eq(x, y)
        }
        _ => {
            let c = gen_bool(a, rng, d);
            let x = gen_bool(a, rng, d);
            let y = gen_bool(a, rng, d);
            a.ite(c, x, y)
        }
    }
}

fn gen_bv(a: &mut TermArena, rng: &mut Rng, depth: u32) -> TermId {
    if depth == 0 {
        return match rng.below(3) {
            0 => a.var("pv0", Sort::BitVec(W)),
            1 => a.var("pv1", Sort::BitVec(W)),
            _ => a.bv_const(W, rng.next() as u128 & 0xff),
        };
    }
    let d = depth - 1;
    match rng.below(10) {
        0 | 1 => {
            let x = gen_bv(a, rng, d);
            let y = gen_bv(a, rng, d);
            a.bv_add(x, y)
        }
        2 => {
            let x = gen_bv(a, rng, d);
            let y = gen_bv(a, rng, d);
            a.bv_sub(x, y)
        }
        3 => {
            let x = gen_bv(a, rng, d);
            let y = gen_bv(a, rng, d);
            a.bv_mul(x, y)
        }
        4 => {
            let x = gen_bv(a, rng, d);
            let y = gen_bv(a, rng, d);
            match rng.below(3) {
                0 => a.bv_and(x, y),
                1 => a.bv_or(x, y),
                _ => a.bv_xor(x, y),
            }
        }
        5 => {
            let x = gen_bv(a, rng, d);
            let y = gen_bv(a, rng, d);
            if rng.below(2) == 0 {
                a.bv_udiv(x, y)
            } else {
                a.bv_urem(x, y)
            }
        }
        6 => {
            let x = gen_bv(a, rng, d);
            if rng.below(2) == 0 {
                a.bv_not(x)
            } else {
                a.bv_neg(x)
            }
        }
        7 => {
            let x = gen_bv(a, rng, d);
            let lo = a.extract(x, W / 2 - 1, 0);
            if rng.below(2) == 0 {
                a.zero_ext(lo, W / 2)
            } else {
                a.sign_ext(lo, W / 2)
            }
        }
        8 => {
            let x = gen_bv(a, rng, d);
            let y = gen_bv(a, rng, d);
            let hi = a.extract(x, W - 1, W / 2);
            let lo = a.extract(y, W / 2 - 1, 0);
            a.concat(hi, lo)
        }
        _ => {
            let c = gen_bool(a, rng, d);
            let x = gen_bv(a, rng, d);
            let y = gen_bv(a, rng, d);
            a.ite(c, x, y)
        }
    }
}

fn gen_int(a: &mut TermArena, rng: &mut Rng, depth: u32) -> TermId {
    if depth == 0 {
        return match rng.below(3) {
            0 => a.var("pi0", Sort::Int),
            1 => a.var("pi1", Sort::Int),
            _ => a.int_const(rng.below(17) as i128 - 8),
        };
    }
    let d = depth - 1;
    match rng.below(6) {
        0 | 1 => {
            let x = gen_int(a, rng, d);
            let y = gen_int(a, rng, d);
            a.int_add2(x, y)
        }
        2 => {
            let x = gen_int(a, rng, d);
            let y = gen_int(a, rng, d);
            a.int_sub(x, y)
        }
        3 => {
            let x = gen_int(a, rng, d);
            a.int_neg(x)
        }
        4 => {
            let c = a.int_const(rng.below(7) as i128 - 3);
            let x = gen_int(a, rng, d);
            a.int_mul(c, x)
        }
        _ => {
            let c = gen_bool(a, rng, d);
            let x = gen_int(a, rng, d);
            let y = gen_int(a, rng, d);
            a.ite(c, x, y)
        }
    }
}

fn random_model(a: &TermArena, rng: &mut Rng) -> Model {
    let mut m = Model::new();
    for (name, sort) in a.vars() {
        let v = match sort {
            Sort::Bool => Value::Bool(rng.below(2) == 0),
            Sort::BitVec(w) => Value::BitVec(*w, rng.next() as u128 & ((1 << w) - 1)),
            Sort::Int => Value::Int(rng.below(17) as i128 - 8),
            Sort::Array(..) => unreachable!(),
        };
        m.set_var(name, v);
    }
    m
}

/// eval(t[x := s], m) == eval(t, m[x := eval(s, m)]), for every sort of
/// substituted variable and replacement term.
#[test]
fn substitution_and_evaluation_commute() {
    let mut rng = Rng(0x5eed_0001);
    for case in 0..600 {
        let mut a = TermArena::new();
        let pool = vars(&mut a);
        let t = gen_bool(&mut a, &mut rng, 4);
        let fv = free_vars(&a, t);
        let x = if fv.is_empty() {
            pool[rng.below(pool.len() as u64) as usize]
        } else {
            fv[rng.below(fv.len() as u64) as usize]
        };
        let x_sort = a.sort(x).clone();
        let s = gen_sorted(&mut a, &mut rng, &x_sort, 3);

        let mut map = HashMap::new();
        map.insert(x, s);
        let t_sub = substitute(&mut a, t, &map);

        let m = random_model(&a, &mut rng);
        let s_val = eval(&a, &m, s).expect("replacement evaluates");
        let mut m2 = m.clone();
        m2.set_var(a.var_name(x), s_val);

        let lhs = eval(&a, &m, t_sub).expect("substituted term evaluates");
        let rhs = eval(&a, &m2, t).expect("original term evaluates");
        assert_eq!(
            lhs,
            rhs,
            "case {case}: subst/eval do not commute for x={} in {}",
            a.var_name(x),
            tpot_smt::print::term_to_string(&a, t)
        );
    }
}

/// Substituting a variable for itself is the identity (hash-consing makes
/// this literal id equality, not just logical equivalence).
#[test]
fn self_substitution_is_identity() {
    let mut rng = Rng(0x5eed_0002);
    for _ in 0..200 {
        let mut a = TermArena::new();
        vars(&mut a);
        let t = gen_bool(&mut a, &mut rng, 4);
        let map: HashMap<TermId, TermId> = free_vars(&a, t).into_iter().map(|v| (v, v)).collect();
        assert_eq!(substitute(&mut a, t, &map), t);
    }
}

/// print → parse → print reaches a textual fixpoint after one round, and
/// the reparsed query is semantically identical to the original under
/// random models (checked by name, so the comparison crosses arenas).
#[test]
fn print_reparse_fingerprint_stable_and_semantics_preserved() {
    let mut rng = Rng(0x5eed_0003);
    for case in 0..300 {
        let mut a = TermArena::new();
        vars(&mut a);
        let t1 = gen_bool(&mut a, &mut rng, 4);
        let t2 = gen_bool(&mut a, &mut rng, 3);
        let s1 = to_smtlib(&a, &[t1, t2]);

        let mut b = TermArena::new();
        let rb = parse_script(&mut b, &s1).unwrap_or_else(|e| panic!("case {case}: {e}\n{s1}"));
        let s2 = to_smtlib(&b, &rb);

        let mut c = TermArena::new();
        let rc = parse_script(&mut c, &s2).unwrap_or_else(|e| panic!("case {case}: {e}\n{s2}"));
        let s3 = to_smtlib(&c, &rc);

        // One round may normalize; after that the text — and hence the
        // persistent-cache fingerprint — must be stable.
        assert_eq!(
            s2, s3,
            "case {case}: print→parse→print not idempotent after one round"
        );
        assert_eq!(query_fingerprint(&s2), query_fingerprint(&s3));

        // Semantic equivalence of original and reparsed, on random models.
        for _ in 0..16 {
            let m = random_model(&a, &mut rng);
            let orig: Vec<Value> = [t1, t2]
                .iter()
                .map(|&t| eval(&a, &m, t).expect("evaluates"))
                .collect();
            let re: Vec<Value> = rb
                .iter()
                .map(|&t| eval(&b, &m, t).expect("reparsed evaluates"))
                .collect();
            assert_eq!(orig, re, "case {case}: reparse changed semantics\n{s1}");
        }
    }
}
