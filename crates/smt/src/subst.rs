//! Substitution and structural traversal utilities.
//!
//! The engine's query simplifier (§4.3, "Constant offsets") rewrites pointer
//! expressions by substituting resolved offsets into later queries; this
//! module provides the generic machinery.

use std::collections::HashMap;

use crate::arena::TermArena;
use crate::term::{Kind, TermId};

/// Rebuilds `t` with every occurrence of a key of `map` replaced by the
/// associated value. The rebuild goes through the arena builders, so
/// constant folding applies to rewritten nodes.
pub fn substitute(arena: &mut TermArena, t: TermId, map: &HashMap<TermId, TermId>) -> TermId {
    let mut cache: HashMap<TermId, TermId> = HashMap::new();
    subst_rec(arena, t, map, &mut cache)
}

fn subst_rec(
    arena: &mut TermArena,
    t: TermId,
    map: &HashMap<TermId, TermId>,
    cache: &mut HashMap<TermId, TermId>,
) -> TermId {
    if let Some(&r) = map.get(&t) {
        return r;
    }
    if let Some(&r) = cache.get(&t) {
        return r;
    }
    let node = arena.term(t).clone();
    if node.args.is_empty() {
        cache.insert(t, t);
        return t;
    }
    let new_args: Vec<TermId> = node
        .args
        .iter()
        .map(|&a| subst_rec(arena, a, map, cache))
        .collect();
    let r = if new_args == node.args {
        t
    } else {
        rebuild(arena, &node.kind, &new_args)
    };
    cache.insert(t, r);
    r
}

/// Rebuilds a node of the given kind from (possibly rewritten) arguments via
/// the folding builders.
pub fn rebuild(arena: &mut TermArena, kind: &Kind, args: &[TermId]) -> TermId {
    match kind {
        Kind::True | Kind::False | Kind::BvConst(_) | Kind::IntConst(_) | Kind::Var(_) => {
            unreachable!("leaf kinds have no arguments")
        }
        Kind::Not => arena.not(args[0]),
        Kind::And => arena.and(args),
        Kind::Or => arena.or(args),
        Kind::Xor => arena.xor(args[0], args[1]),
        Kind::Implies => arena.implies(args[0], args[1]),
        Kind::Ite => arena.ite(args[0], args[1], args[2]),
        Kind::Eq => arena.eq(args[0], args[1]),
        Kind::BvNeg => arena.bv_neg(args[0]),
        Kind::BvAdd => arena.bv_add(args[0], args[1]),
        Kind::BvSub => arena.bv_sub(args[0], args[1]),
        Kind::BvMul => arena.bv_mul(args[0], args[1]),
        Kind::BvUDiv => arena.bv_udiv(args[0], args[1]),
        Kind::BvURem => arena.bv_urem(args[0], args[1]),
        Kind::BvAnd => arena.bv_and(args[0], args[1]),
        Kind::BvOr => arena.bv_or(args[0], args[1]),
        Kind::BvXor => arena.bv_xor(args[0], args[1]),
        Kind::BvNot => arena.bv_not(args[0]),
        Kind::BvShl => arena.bv_shl(args[0], args[1]),
        Kind::BvLShr => arena.bv_lshr(args[0], args[1]),
        Kind::BvAShr => arena.bv_ashr(args[0], args[1]),
        Kind::BvUlt => arena.bv_ult(args[0], args[1]),
        Kind::BvUle => arena.bv_ule(args[0], args[1]),
        Kind::BvSlt => arena.bv_slt(args[0], args[1]),
        Kind::BvSle => arena.bv_sle(args[0], args[1]),
        Kind::Concat => arena.concat(args[0], args[1]),
        Kind::Extract { hi, lo } => arena.extract(args[0], *hi, *lo),
        Kind::ZeroExt { extra } => arena.zero_ext(args[0], *extra),
        Kind::SignExt { extra } => arena.sign_ext(args[0], *extra),
        Kind::IntAdd => arena.int_add(args),
        Kind::IntSub => arena.int_sub(args[0], args[1]),
        Kind::IntMul => arena.int_mul(args[0], args[1]),
        Kind::IntNeg => arena.int_neg(args[0]),
        Kind::IntLe => arena.int_le(args[0], args[1]),
        Kind::IntLt => arena.int_lt(args[0], args[1]),
        Kind::Select => arena.select(args[0], args[1]),
        Kind::Store => arena.store(args[0], args[1], args[2]),
        Kind::Apply(f) => arena.apply(*f, args.to_vec()),
    }
}

/// Collects every free variable occurring in `t` (as term ids).
pub fn free_vars(arena: &TermArena, t: TermId) -> Vec<TermId> {
    let mut out = Vec::new();
    let mut seen: std::collections::HashSet<TermId> = std::collections::HashSet::new();
    let mut stack = vec![t];
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur) {
            continue;
        }
        let node = arena.term(cur);
        if matches!(node.kind, Kind::Var(_)) {
            out.push(cur);
        }
        stack.extend(node.args.iter().copied());
    }
    out.sort_unstable();
    out
}

/// Counts the number of distinct DAG nodes reachable from `t` (a size metric
/// for query-complexity statistics).
pub fn dag_size(arena: &TermArena, t: TermId) -> usize {
    let mut seen: std::collections::HashSet<TermId> = std::collections::HashSet::new();
    let mut stack = vec![t];
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur) {
            continue;
        }
        stack.extend(arena.term(cur).args.iter().copied());
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    #[test]
    fn substitute_var() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(8));
        let y = a.var("y", Sort::BitVec(8));
        let c = a.bv_const(8, 1);
        let e = a.bv_add(x, c);
        let mut map = HashMap::new();
        map.insert(x, y);
        let r = substitute(&mut a, e, &map);
        let expect = a.bv_add(y, c);
        assert_eq!(r, expect);
    }

    #[test]
    fn substitute_triggers_folding() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(8));
        let c2 = a.bv_const(8, 2);
        let e = a.bv_mul(x, c2);
        let c3 = a.bv_const(8, 3);
        let mut map = HashMap::new();
        map.insert(x, c3);
        let r = substitute(&mut a, e, &map);
        assert_eq!(a.term(r).as_bv_const(), Some((8, 6)));
    }

    #[test]
    fn free_vars_and_size() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let s = a.int_add2(x, y);
        let e = a.int_lt(s, x);
        let fv = free_vars(&a, e);
        assert_eq!(fv.len(), 2);
        assert!(dag_size(&a, e) >= 3);
    }

    #[test]
    fn substitution_is_simultaneous_not_sequential() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let s = a.int_add2(x, y);
        // Swap x and y: must not cascade.
        let mut map = HashMap::new();
        map.insert(x, y);
        map.insert(y, x);
        let r = substitute(&mut a, s, &map);
        assert_eq!(r, s); // x+y is commutative-normalized, swap is identity
    }
}
