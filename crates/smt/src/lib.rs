//! Hash-consed SMT term representation for TPot.
//!
//! This crate is the substrate shared by the symbolic-execution engine
//! (`tpot-engine`), the memory model (`tpot-mem`) and the SMT solver
//! (`tpot-solver`). It provides:
//!
//! - [`Sort`]: booleans, fixed-width bitvectors, mathematical integers and
//!   arrays.
//! - [`TermArena`]: a hash-consing arena. Structurally equal terms share one
//!   [`TermId`], so id equality is structural equality and the engine's
//!   caches (read-after-write proofs, constant offsets, persistent query
//!   cache) key directly on ids.
//! - A building API with local constant folding and peephole simplification,
//!   mirroring the constant/equality propagation KLEE performs before the
//!   paper's query simplifier (§4.3) takes over.
//! - An SMT-LIB2 serializer ([`mod@print`]); serialization time is one of the
//!   cost buckets of Figure 7.
//! - A concrete evaluator ([`mod@eval`]) used to validate models a posteriori
//!   (the paper recommends validating portfolio results, §4.4) and in
//!   property tests.
//!
//! The term language is deliberately quantifier-free: TPot's encoding keeps
//! quantifiers out of solver queries (§4.3), handling universal properties by
//! explicit instantiation. The only "quantified" facts are memory-safety
//! constraints over the `heap_safe` uninterpreted function, which the engine
//! instantiates itself.

pub mod arena;
pub mod eval;
pub mod model;
pub mod parse;
pub mod print;
pub mod sort;
pub mod subst;
pub mod term;

pub use arena::{FuncDecl, FuncId, TermArena};
pub use eval::{eval, EvalError};
pub use model::{FuncInterp, Model, Value};
pub use parse::{parse_script, ParseError};
pub use sort::Sort;
pub use term::{Kind, Term, TermId};
