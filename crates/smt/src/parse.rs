//! SMT-LIB2 parsing for the subset [`crate::print`] emits.
//!
//! The printer is the single serialization point of the pipeline (every
//! solver query and every persistent-cache key goes through it), so its
//! output grammar doubles as the repo's query interchange format: reduced
//! fuzz repros, the committed regression corpus, and the print→reparse
//! round-trip property tests all parse with this module. It is a *reader
//! for our own writer* — full SMT-LIB (let-bindings, annotations, push/pop)
//! is intentionally out of scope.
//!
//! Terms are rebuilt through the arena's simplifying builders, so a parsed
//! script is logically equivalent to its source but not necessarily
//! node-identical; one print→parse round normalizes a script onto the
//! builder-canonical form (see the fingerprint-stability property test).

use std::collections::HashMap;
use std::fmt;

use crate::arena::{FuncId, TermArena};
use crate::sort::Sort;
use crate::term::TermId;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "smtlib parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

// ------------------------------------------------------------------ sexps

#[derive(Debug, Clone, PartialEq, Eq)]
enum Sexp {
    Atom(String),
    List(Vec<Sexp>),
}

fn tokenize(text: &str) -> Result<Vec<String>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' => {
                toks.push(c.to_string());
                chars.next();
            }
            '|' => {
                // Quoted symbol: everything up to the closing bar, bars
                // stripped (the arena stores the raw name).
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('|') => break,
                        Some(c) => s.push(c),
                        None => return err("unterminated |quoted| symbol"),
                    }
                }
                toks.push(s);
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' || c == '|' {
                        break;
                    }
                    s.push(c);
                    chars.next();
                }
                toks.push(s);
            }
        }
    }
    Ok(toks)
}

fn parse_sexps(toks: &[String]) -> Result<Vec<Sexp>, ParseError> {
    let mut stack: Vec<Vec<Sexp>> = vec![Vec::new()];
    for t in toks {
        match t.as_str() {
            "(" => stack.push(Vec::new()),
            ")" => {
                let done = stack.pop().ok_or_else(|| ParseError("stray ')'".into()))?;
                let top = stack
                    .last_mut()
                    .ok_or_else(|| ParseError("unbalanced ')'".into()))?;
                top.push(Sexp::List(done));
            }
            _ => stack
                .last_mut()
                .expect("stack never empty")
                .push(Sexp::Atom(t.clone())),
        }
    }
    if stack.len() != 1 {
        return err("unbalanced '('");
    }
    Ok(stack.pop().unwrap())
}

// ------------------------------------------------------------------ sorts

fn parse_sort(s: &Sexp) -> Result<Sort, ParseError> {
    match s {
        Sexp::Atom(a) => match a.as_str() {
            "Bool" => Ok(Sort::Bool),
            "Int" => Ok(Sort::Int),
            other => err(format!("unknown sort {other}")),
        },
        Sexp::List(items) => match items.as_slice() {
            [Sexp::Atom(u), Sexp::Atom(bv), Sexp::Atom(w)] if u == "_" && bv == "BitVec" => {
                let w: u32 = w
                    .parse()
                    .map_err(|_| ParseError(format!("bad bitvector width {w}")))?;
                Ok(Sort::BitVec(w))
            }
            [Sexp::Atom(arr), i, e] if arr == "Array" => Ok(Sort::Array(
                Box::new(parse_sort(i)?),
                Box::new(parse_sort(e)?),
            )),
            _ => err(format!("unknown sort {items:?}")),
        },
    }
}

// ------------------------------------------------------------------ terms

struct Env {
    funcs: HashMap<String, FuncId>,
    vars: HashMap<String, Sort>,
}

fn parse_term(arena: &mut TermArena, env: &Env, s: &Sexp) -> Result<TermId, ParseError> {
    match s {
        Sexp::Atom(a) => parse_atom(arena, env, a),
        Sexp::List(items) => {
            if items.is_empty() {
                return err("empty application");
            }
            // Indexed operators: ((_ extract h l) t) etc., and the
            // standalone bitvector literal (_ bvN w).
            if let Sexp::List(head) = &items[0] {
                return parse_indexed(arena, env, head, &items[1..]);
            }
            let Sexp::Atom(op) = &items[0] else {
                return err("bad application head");
            };
            if op == "_" {
                // (_ bvN w) literal in head position.
                return parse_underscore(arena, &items[1..]);
            }
            let args: Vec<TermId> = items[1..]
                .iter()
                .map(|a| parse_term(arena, env, a))
                .collect::<Result<_, _>>()?;
            apply_op(arena, env, op, &args)
        }
    }
}

fn parse_atom(arena: &mut TermArena, env: &Env, a: &str) -> Result<TermId, ParseError> {
    match a {
        "true" => return Ok(arena.tru()),
        "false" => return Ok(arena.fls()),
        _ => {}
    }
    if let Some(hex) = a.strip_prefix("#x") {
        let v = u128::from_str_radix(hex, 16)
            .map_err(|_| ParseError(format!("bad hex literal {a}")))?;
        return Ok(arena.bv_const(4 * hex.len() as u32, v));
    }
    if let Some(bits) = a.strip_prefix("#b") {
        let v = u128::from_str_radix(bits, 2)
            .map_err(|_| ParseError(format!("bad binary literal {a}")))?;
        return Ok(arena.bv_const(bits.len() as u32, v));
    }
    if a.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        let v: i128 = a
            .parse()
            .map_err(|_| ParseError(format!("bad numeral {a}")))?;
        return Ok(arena.int_const(v));
    }
    if let Some(sort) = env.vars.get(a) {
        return Ok(arena.var(a, sort.clone()));
    }
    err(format!("undeclared symbol {a}"))
}

fn parse_underscore(arena: &mut TermArena, rest: &[Sexp]) -> Result<TermId, ParseError> {
    match rest {
        [Sexp::Atom(bv), Sexp::Atom(w)] if bv.starts_with("bv") => {
            let v: u128 = bv[2..]
                .parse()
                .map_err(|_| ParseError(format!("bad bv literal bv{}", &bv[2..])))?;
            let w: u32 = w
                .parse()
                .map_err(|_| ParseError(format!("bad bv literal width {w}")))?;
            Ok(arena.bv_const(w, v))
        }
        _ => err(format!("unknown (_ ...) form {rest:?}")),
    }
}

fn parse_indexed(
    arena: &mut TermArena,
    env: &Env,
    head: &[Sexp],
    args: &[Sexp],
) -> Result<TermId, ParseError> {
    let atoms: Vec<&str> = head
        .iter()
        .map(|s| match s {
            Sexp::Atom(a) => Ok(a.as_str()),
            _ => err("nested list in indexed operator"),
        })
        .collect::<Result<_, _>>()?;
    let targs: Vec<TermId> = args
        .iter()
        .map(|a| parse_term(arena, env, a))
        .collect::<Result<_, _>>()?;
    match (atoms.as_slice(), targs.as_slice()) {
        (["_", "extract", h, l], [t]) => {
            let h: u32 = h.parse().map_err(|_| ParseError("bad extract hi".into()))?;
            let l: u32 = l.parse().map_err(|_| ParseError("bad extract lo".into()))?;
            Ok(arena.extract(*t, h, l))
        }
        (["_", "zero_extend", n], [t]) => {
            let n: u32 = n
                .parse()
                .map_err(|_| ParseError("bad zero_extend".into()))?;
            Ok(arena.zero_ext(*t, n))
        }
        (["_", "sign_extend", n], [t]) => {
            let n: u32 = n
                .parse()
                .map_err(|_| ParseError("bad sign_extend".into()))?;
            Ok(arena.sign_ext(*t, n))
        }
        _ => err(format!("unknown indexed operator {atoms:?}")),
    }
}

fn apply_op(
    arena: &mut TermArena,
    env: &Env,
    op: &str,
    args: &[TermId],
) -> Result<TermId, ParseError> {
    let bin = |args: &[TermId]| -> Result<(TermId, TermId), ParseError> {
        match args {
            [a, b] => Ok((*a, *b)),
            _ => err(format!(
                "operator {op} expects 2 arguments, got {}",
                args.len()
            )),
        }
    };
    let un = |args: &[TermId]| -> Result<TermId, ParseError> {
        match args {
            [a] => Ok(*a),
            _ => err(format!(
                "operator {op} expects 1 argument, got {}",
                args.len()
            )),
        }
    };
    Ok(match op {
        "not" => {
            let a = un(args)?;
            arena.not(a)
        }
        "and" => arena.and(args),
        "or" => arena.or(args),
        "xor" => {
            let (a, b) = bin(args)?;
            arena.xor(a, b)
        }
        "=>" => {
            let (a, b) = bin(args)?;
            arena.implies(a, b)
        }
        "ite" => match args {
            [c, t, e] => arena.ite(*c, *t, *e),
            _ => return err("ite expects 3 arguments"),
        },
        "=" => {
            let (a, b) = bin(args)?;
            arena.eq(a, b)
        }
        "distinct" => {
            let (a, b) = bin(args)?;
            arena.neq(a, b)
        }
        "bvneg" => arena.bv_neg(un(args)?),
        "bvnot" => arena.bv_not(un(args)?),
        "bvadd" => {
            let (a, b) = bin(args)?;
            arena.bv_add(a, b)
        }
        "bvsub" => {
            let (a, b) = bin(args)?;
            arena.bv_sub(a, b)
        }
        "bvmul" => {
            let (a, b) = bin(args)?;
            arena.bv_mul(a, b)
        }
        "bvudiv" => {
            let (a, b) = bin(args)?;
            arena.bv_udiv(a, b)
        }
        "bvurem" => {
            let (a, b) = bin(args)?;
            arena.bv_urem(a, b)
        }
        "bvand" => {
            let (a, b) = bin(args)?;
            arena.bv_and(a, b)
        }
        "bvor" => {
            let (a, b) = bin(args)?;
            arena.bv_or(a, b)
        }
        "bvxor" => {
            let (a, b) = bin(args)?;
            arena.bv_xor(a, b)
        }
        "bvshl" => {
            let (a, b) = bin(args)?;
            arena.bv_shl(a, b)
        }
        "bvlshr" => {
            let (a, b) = bin(args)?;
            arena.bv_lshr(a, b)
        }
        "bvashr" => {
            let (a, b) = bin(args)?;
            arena.bv_ashr(a, b)
        }
        "bvult" => {
            let (a, b) = bin(args)?;
            arena.bv_ult(a, b)
        }
        "bvule" => {
            let (a, b) = bin(args)?;
            arena.bv_ule(a, b)
        }
        "bvslt" => {
            let (a, b) = bin(args)?;
            arena.bv_slt(a, b)
        }
        "bvsle" => {
            let (a, b) = bin(args)?;
            arena.bv_sle(a, b)
        }
        "concat" => {
            let (a, b) = bin(args)?;
            arena.concat(a, b)
        }
        "+" => arena.int_add(args),
        "-" => match args {
            [a] => arena.int_neg(*a),
            [a, b] => arena.int_sub(*a, *b),
            _ => return err("- expects 1 or 2 arguments"),
        },
        "*" => {
            let (a, b) = bin(args)?;
            arena.int_mul(a, b)
        }
        "<=" => {
            let (a, b) = bin(args)?;
            arena.int_le(a, b)
        }
        "<" => {
            let (a, b) = bin(args)?;
            arena.int_lt(a, b)
        }
        "select" => {
            let (a, b) = bin(args)?;
            arena.select(a, b)
        }
        "store" => match args {
            [a, i, v] => arena.store(*a, *i, *v),
            _ => return err("store expects 3 arguments"),
        },
        name => {
            let Some(&f) = env.funcs.get(name) else {
                return err(format!("unknown operator or function {name}"));
            };
            arena.apply(f, args.to_vec())
        }
    })
}

// ---------------------------------------------------------------- scripts

/// Parses a full `check-sat` script as produced by [`crate::print::to_smtlib`]
/// into `arena`, returning the asserted terms in order. `declare-const` and
/// `declare-fun` register variables/functions in the arena; `set-logic`,
/// `check-sat` and `exit` are accepted and ignored.
pub fn parse_script(arena: &mut TermArena, text: &str) -> Result<Vec<TermId>, ParseError> {
    let sexps = parse_sexps(&tokenize(text)?)?;
    let mut env = Env {
        funcs: HashMap::new(),
        vars: HashMap::new(),
    };
    let mut assertions = Vec::new();
    for cmd in &sexps {
        let Sexp::List(items) = cmd else {
            return err(format!("top-level atom {cmd:?}"));
        };
        let Some(Sexp::Atom(head)) = items.first() else {
            return err("empty or malformed command");
        };
        match head.as_str() {
            "set-logic" | "check-sat" | "exit" | "set-option" | "set-info" => {}
            "declare-const" => match items.as_slice() {
                [_, Sexp::Atom(name), sort] => {
                    let sort = parse_sort(sort)?;
                    arena.var(name, sort.clone());
                    env.vars.insert(name.clone(), sort);
                }
                _ => return err("malformed declare-const"),
            },
            "declare-fun" => match items.as_slice() {
                [_, Sexp::Atom(name), Sexp::List(argsorts), ret] => {
                    let ret = parse_sort(ret)?;
                    if argsorts.is_empty() {
                        // Nullary declare-fun is just a variable.
                        arena.var(name, ret.clone());
                        env.vars.insert(name.clone(), ret);
                    } else {
                        let args: Vec<Sort> =
                            argsorts.iter().map(parse_sort).collect::<Result<_, _>>()?;
                        let f = arena.declare_func(name, args, ret);
                        env.funcs.insert(name.clone(), f);
                    }
                }
                _ => return err("malformed declare-fun"),
            },
            "assert" => match items.as_slice() {
                [_, t] => assertions.push(parse_term(arena, &env, t)?),
                _ => return err("malformed assert"),
            },
            other => return err(format!("unsupported command {other}")),
        }
    }
    Ok(assertions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::to_smtlib;

    #[test]
    fn round_trips_a_printed_script() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(8));
        let y = a.var("y", Sort::BitVec(8));
        let n = a.var("n", Sort::Int);
        let f = a.declare_func("f", vec![Sort::BitVec(8)], Sort::BitVec(8));
        let fx = a.apply(f, vec![x]);
        let sum = a.bv_add(fx, y);
        let c = a.bv_const(8, 0x2a);
        let e1 = a.eq(sum, c);
        let five = a.int_const(-5);
        let e2 = a.int_lt(five, n);
        let text = to_smtlib(&a, &[e1, e2]);

        let mut b = TermArena::new();
        let roots = parse_script(&mut b, &text).expect("parses own output");
        assert_eq!(roots.len(), 2);
        assert_eq!(to_smtlib(&b, &roots), text);
    }

    #[test]
    fn parses_indexed_and_literals() {
        let mut a = TermArena::new();
        let text = "(set-logic ALL)\n\
                    (declare-const v (_ BitVec 7))\n\
                    (declare-const w (_ BitVec 8))\n\
                    (assert (= ((_ zero_extend 1) v) w))\n\
                    (assert (distinct (_ bv3 8) ((_ extract 7 0) (concat #b1 w))))\n\
                    (check-sat)\n";
        let roots = parse_script(&mut a, text).expect("parses");
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn rejects_undeclared_and_garbage() {
        let mut a = TermArena::new();
        assert!(parse_script(&mut a, "(assert x)").is_err());
        assert!(parse_script(&mut a, "(assert (").is_err());
        assert!(parse_script(&mut a, "(frob x)").is_err());
    }
}
