//! Sorts (types) of SMT terms.

use std::fmt;

/// The sort of an SMT term.
///
/// TPot's encoding (§4.3 of the paper) uses:
/// - `Bool` for path-condition constraints,
/// - `BitVec(w)` for all program data (the byte memory model of §4.2 makes
///   no distinction between pointers and data),
/// - `Int` for heap addresses and object sizes after the `tpot_bv2int`
///   conversion performed during pointer resolution, and
/// - `Array(BV64, BV8)` for memory-object contents, following KLEE's
///   byte-array object representation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// Boolean sort.
    Bool,
    /// Fixed-width bitvector; width in bits, `1..=128`.
    BitVec(u32),
    /// Mathematical (unbounded) integer. Constants are stored as `i128`;
    /// the solver rejects computations that would leave `i128` range instead
    /// of wrapping.
    Int,
    /// Array sort with index and element sorts.
    Array(Box<Sort>, Box<Sort>),
}

impl Sort {
    /// Convenience constructor for the byte-array sort used for memory
    /// object contents: `(Array (_ BitVec 64) (_ BitVec 8))`.
    pub fn byte_array() -> Sort {
        Sort::Array(Box::new(Sort::BitVec(64)), Box::new(Sort::BitVec(8)))
    }

    /// Returns the bitvector width, or `None` for non-bitvector sorts.
    pub fn bv_width(&self) -> Option<u32> {
        match self {
            Sort::BitVec(w) => Some(*w),
            _ => None,
        }
    }

    /// True if this is the boolean sort.
    pub fn is_bool(&self) -> bool {
        matches!(self, Sort::Bool)
    }

    /// True if this is the integer sort.
    pub fn is_int(&self) -> bool {
        matches!(self, Sort::Int)
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::BitVec(w) => write!(f, "(_ BitVec {w})"),
            Sort::Int => write!(f, "Int"),
            Sort::Array(i, e) => write!(f, "(Array {i} {e})"),
        }
    }
}

/// Returns the mask with the low `width` bits set.
///
/// Bitvector constants of width `w` are stored in a `u128` with all bits
/// above `w` clear; every arithmetic operation re-masks through this.
pub fn bv_mask(width: u32) -> u128 {
    debug_assert!((1..=128).contains(&width));
    if width == 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// Sign-extends a `width`-bit value (stored zero-extended in a `u128`) to a
/// signed `i128`.
pub fn bv_signed(width: u32, value: u128) -> i128 {
    debug_assert_eq!(value & !bv_mask(width), 0);
    if width == 128 {
        return value as i128;
    }
    let sign_bit = 1u128 << (width - 1);
    if value & sign_bit != 0 {
        (value | !bv_mask(width)) as i128
    } else {
        value as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_widths() {
        assert_eq!(bv_mask(1), 1);
        assert_eq!(bv_mask(8), 0xff);
        assert_eq!(bv_mask(64), u64::MAX as u128);
        assert_eq!(bv_mask(128), u128::MAX);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(bv_signed(8, 0xff), -1);
        assert_eq!(bv_signed(8, 0x7f), 127);
        assert_eq!(bv_signed(8, 0x80), -128);
        assert_eq!(bv_signed(64, u64::MAX as u128), -1);
        assert_eq!(bv_signed(1, 1), -1);
        assert_eq!(bv_signed(1, 0), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Sort::BitVec(64).to_string(), "(_ BitVec 64)");
        assert_eq!(
            Sort::byte_array().to_string(),
            "(Array (_ BitVec 64) (_ BitVec 8))"
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Sort::BitVec(32).bv_width(), Some(32));
        assert_eq!(Sort::Int.bv_width(), None);
        assert!(Sort::Bool.is_bool());
        assert!(Sort::Int.is_int());
        assert!(!Sort::Bool.is_int());
    }
}
