//! Hash-consing arena and the term-building API.
//!
//! All construction goes through [`TermArena`]; the builders perform local
//! constant folding and peephole simplification so that downstream consumers
//! (the engine's query simplifier, the solver's preprocessor) see normalized
//! terms. Commutative operators sort their operands by id, improving sharing.

use std::collections::{HashMap, HashSet};

use crate::sort::{bv_mask, bv_signed, Sort};
use crate::term::{Kind, Term, TermId};

/// Identifier of a declared uninterpreted function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FuncId(pub u32);

/// Declaration of an uninterpreted function.
#[derive(Clone, Debug)]
pub struct FuncDecl {
    /// Function name as it appears in SMT-LIB output.
    pub name: String,
    /// Argument sorts.
    pub args: Vec<Sort>,
    /// Return sort.
    pub ret: Sort,
}

/// Hash-consing term arena.
///
/// The arena owns every term ever built; terms are immutable and deduplicated
/// structurally. Variables and uninterpreted functions are interned by name.
/// `Clone` is used by the solver portfolio: each racing instance works on its
/// own copy (term ids remain aligned across clones).
#[derive(Default, Clone)]
pub struct TermArena {
    terms: Vec<Term>,
    map: HashMap<Term, TermId>,
    vars: Vec<(String, Sort)>,
    var_map: HashMap<String, u32>,
    funcs: Vec<FuncDecl>,
    func_map: HashMap<String, FuncId>,
    fresh_counter: u64,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms in the arena.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the arena holds no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the term node for an id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Returns the sort of a term.
    pub fn sort(&self, id: TermId) -> &Sort {
        &self.terms[id.index()].sort
    }

    /// Returns the name of a variable node.
    ///
    /// # Panics
    /// Panics if `id` is not a `Var` node.
    pub fn var_name(&self, id: TermId) -> &str {
        match self.term(id).kind {
            Kind::Var(sym) => &self.vars[sym as usize].0,
            _ => panic!("var_name on non-variable term"),
        }
    }

    /// Returns the declaration of a function id.
    pub fn func(&self, id: FuncId) -> &FuncDecl {
        &self.funcs[id.0 as usize]
    }

    /// All declared functions, in declaration order.
    pub fn funcs(&self) -> &[FuncDecl] {
        &self.funcs
    }

    /// All interned variables, in declaration order.
    pub fn vars(&self) -> &[(String, Sort)] {
        &self.vars
    }

    fn mk(&mut self, kind: Kind, args: Vec<TermId>, sort: Sort) -> TermId {
        let t = Term { kind, args, sort };
        if let Some(&id) = self.map.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.map.insert(t, id);
        id
    }

    // ---------------------------------------------------------------- leaves

    /// The constant `true`.
    pub fn tru(&mut self) -> TermId {
        self.mk(Kind::True, vec![], Sort::Bool)
    }

    /// The constant `false`.
    pub fn fls(&mut self) -> TermId {
        self.mk(Kind::False, vec![], Sort::Bool)
    }

    /// A boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        if b {
            self.tru()
        } else {
            self.fls()
        }
    }

    /// A bitvector constant of the given width; the value is masked to the
    /// width.
    pub fn bv_const(&mut self, width: u32, value: u128) -> TermId {
        assert!((1..=128).contains(&width), "bv width out of range: {width}");
        self.mk(
            Kind::BvConst(value & bv_mask(width)),
            vec![],
            Sort::BitVec(width),
        )
    }

    /// A 64-bit bitvector constant (the pervasive pointer width).
    pub fn bv64(&mut self, value: u64) -> TermId {
        self.bv_const(64, value as u128)
    }

    /// An integer constant.
    pub fn int_const(&mut self, value: i128) -> TermId {
        self.mk(Kind::IntConst(value), vec![], Sort::Int)
    }

    /// Interns a variable by name.
    ///
    /// # Panics
    /// Panics if the name was previously interned with a different sort.
    pub fn var(&mut self, name: &str, sort: Sort) -> TermId {
        if let Some(&sym) = self.var_map.get(name) {
            assert_eq!(
                self.vars[sym as usize].1, sort,
                "variable {name} re-declared with different sort"
            );
            return self.mk(Kind::Var(sym), vec![], sort);
        }
        let sym = self.vars.len() as u32;
        self.vars.push((name.to_string(), sort.clone()));
        self.var_map.insert(name.to_string(), sym);
        self.mk(Kind::Var(sym), vec![], sort)
    }

    /// Creates a variable with a unique, prefix-derived name.
    pub fn fresh_var(&mut self, prefix: &str, sort: Sort) -> TermId {
        loop {
            let name = format!("{prefix}!{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.var_map.contains_key(&name) {
                return self.var(&name, sort);
            }
        }
    }

    /// Declares an uninterpreted function, or returns the existing id when
    /// one with the same name and signature exists.
    ///
    /// # Panics
    /// Panics if the name exists with a different signature.
    pub fn declare_func(&mut self, name: &str, args: Vec<Sort>, ret: Sort) -> FuncId {
        if let Some(&id) = self.func_map.get(name) {
            let d = &self.funcs[id.0 as usize];
            assert!(
                d.args == args && d.ret == ret,
                "function {name} re-declared with different signature"
            );
            return id;
        }
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncDecl {
            name: name.to_string(),
            args,
            ret,
        });
        self.func_map.insert(name.to_string(), id);
        id
    }

    /// Applies a declared function.
    pub fn apply(&mut self, f: FuncId, args: Vec<TermId>) -> TermId {
        let decl = &self.funcs[f.0 as usize];
        debug_assert_eq!(
            decl.args.len(),
            args.len(),
            "arity mismatch for {}",
            decl.name
        );
        let ret = decl.ret.clone();
        self.mk(Kind::Apply(f), args, ret)
    }

    // ---------------------------------------------------------------- boolean

    /// Logical negation.
    pub fn not(&mut self, a: TermId) -> TermId {
        match self.term(a).kind {
            Kind::True => return self.fls(),
            Kind::False => return self.tru(),
            Kind::Not => return self.term(a).args[0],
            _ => {}
        }
        self.mk(Kind::Not, vec![a], Sort::Bool)
    }

    /// N-ary conjunction with flattening, constant elimination and
    /// deduplication.
    pub fn and(&mut self, parts: &[TermId]) -> TermId {
        let mut flat: Vec<TermId> = Vec::with_capacity(parts.len());
        for &p in parts {
            match &self.term(p).kind {
                Kind::True => {}
                Kind::False => return self.fls(),
                Kind::And => flat.extend(self.term(p).args.iter().copied()),
                _ => flat.push(p),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // `x && !x` is false.
        for &t in &flat {
            if let Kind::Not = self.term(t).kind {
                let inner = self.term(t).args[0];
                if flat.binary_search(&inner).is_ok() {
                    return self.fls();
                }
            }
        }
        match flat.len() {
            0 => self.tru(),
            1 => flat[0],
            _ => self.mk(Kind::And, flat, Sort::Bool),
        }
    }

    /// Binary conjunction.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and(&[a, b])
    }

    /// N-ary disjunction with flattening, constant elimination and
    /// deduplication.
    pub fn or(&mut self, parts: &[TermId]) -> TermId {
        let mut flat: Vec<TermId> = Vec::with_capacity(parts.len());
        for &p in parts {
            match &self.term(p).kind {
                Kind::False => {}
                Kind::True => return self.tru(),
                Kind::Or => flat.extend(self.term(p).args.iter().copied()),
                _ => flat.push(p),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        for &t in &flat {
            if let Kind::Not = self.term(t).kind {
                let inner = self.term(t).args[0];
                if flat.binary_search(&inner).is_ok() {
                    return self.tru();
                }
            }
        }
        match flat.len() {
            0 => self.fls(),
            1 => flat[0],
            _ => self.mk(Kind::Or, flat, Sort::Bool),
        }
    }

    /// Binary disjunction.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or(&[a, b])
    }

    /// Implication, lowered to `!a || b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or2(na, b)
    }

    /// Boolean exclusive or.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.term(a).as_bool_const(), self.term(b).as_bool_const()) {
            (Some(x), Some(y)) => return self.bool_const(x ^ y),
            (Some(false), None) => return b,
            (None, Some(false)) => return a,
            (Some(true), None) => return self.not(b),
            (None, Some(true)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return self.fls();
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(Kind::Xor, vec![a, b], Sort::Bool)
    }

    /// If-then-else over any sort.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        debug_assert!(self.sort(cond).is_bool());
        debug_assert_eq!(self.sort(then), self.sort(els));
        match self.term(cond).as_bool_const() {
            Some(true) => return then,
            Some(false) => return els,
            None => {}
        }
        if then == els {
            return then;
        }
        // Boolean ite lowers to and/or so the CNF stays small.
        if self.sort(then).is_bool() {
            let nc = self.not(cond);
            let l = self.and2(cond, then);
            let r = self.and2(nc, els);
            return self.or2(l, r);
        }
        let sort = self.sort(then).clone();
        self.mk(Kind::Ite, vec![cond, then, els], sort)
    }

    /// Equality over any sort.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), self.sort(b), "eq sort mismatch");
        if a == b {
            return self.tru();
        }
        let (ta, tb) = (self.term(a), self.term(b));
        if ta.is_const() && tb.is_const() {
            // Distinct constant leaves of equal sort are unequal.
            return self.fls();
        }
        // Boolean equality with a constant simplifies.
        if let Some(c) = ta.as_bool_const() {
            return if c { b } else { self.not(b) };
        }
        if let Some(c) = tb.as_bool_const() {
            return if c { a } else { self.not(a) };
        }
        // Comparison-flag peepholes: `zext(x) == c` narrows, and
        // `ite(cond, k1, k2) == c` selects — together these turn C's
        // widened 0/1 comparison results back into the underlying boolean.
        for (x, y) in [(a, b), (b, a)] {
            if let Some((_, c)) = self.term(y).as_bv_const() {
                match self.term(x).kind.clone() {
                    Kind::ZeroExt { extra } => {
                        let inner = self.term(x).args[0];
                        let wi = self.bv_width_of(inner);
                        let _ = extra;
                        if c >> wi != 0 {
                            return self.fls();
                        }
                        let ci = self.bv_const(wi, c);
                        return self.eq(inner, ci);
                    }
                    Kind::Ite => {
                        let cond = self.term(x).args[0];
                        let t1 = self.term(x).args[1];
                        let t2 = self.term(x).args[2];
                        if let (Some((_, v1)), Some((_, v2))) =
                            (self.term(t1).as_bv_const(), self.term(t2).as_bv_const())
                        {
                            return match (v1 == c, v2 == c) {
                                (true, true) => self.tru(),
                                (true, false) => cond,
                                (false, true) => self.not(cond),
                                (false, false) => self.fls(),
                            };
                        }
                    }
                    _ => {}
                }
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(Kind::Eq, vec![a, b], Sort::Bool)
    }

    /// Disequality.
    pub fn neq(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    // ---------------------------------------------------------------- bitvec

    fn bv_width_of(&self, a: TermId) -> u32 {
        self.sort(a)
            .bv_width()
            .expect("bitvector operation on non-bitvector term")
    }

    fn bv_binop(
        &mut self,
        kind: Kind,
        a: TermId,
        b: TermId,
        fold: impl Fn(u32, u128, u128) -> u128,
        commutes: bool,
    ) -> TermId {
        let w = self.bv_width_of(a);
        debug_assert_eq!(w, self.bv_width_of(b), "bv width mismatch");
        if let (Some((_, x)), Some((_, y))) =
            (self.term(a).as_bv_const(), self.term(b).as_bv_const())
        {
            return self.bv_const(w, fold(w, x, y));
        }
        let (a, b) = if commutes && b < a { (b, a) } else { (a, b) };
        self.mk(kind, vec![a, b], Sort::BitVec(w))
    }

    /// Bitvector addition.
    pub fn bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_width_of(a);
        if self.term(a).as_bv_const().map(|c| c.1) == Some(0) {
            return b;
        }
        if self.term(b).as_bv_const().map(|c| c.1) == Some(0) {
            return a;
        }
        // `a + (b - a)` folds to `b` (marker instantiation rebuilds element
        // pointers this way).
        for (x, y) in [(a, b), (b, a)] {
            if self.term(y).kind == Kind::BvSub && self.term(y).args[1] == x {
                return self.term(y).args[0];
            }
        }
        // Reassociate `(x + c1) + c2` into `x + (c1+c2)` so constant offsets
        // accumulate (pointer arithmetic chains produce these).
        if let Some((_, c2)) = self.term(b).as_bv_const() {
            if self.term(a).kind == Kind::BvAdd {
                let x = self.term(a).args[0];
                let y = self.term(a).args[1];
                if let Some((_, c1)) = self.term(y).as_bv_const() {
                    let c = self.bv_const(w, c1.wrapping_add(c2));
                    return self.bv_add(x, c);
                }
            }
        }
        self.bv_binop(
            Kind::BvAdd,
            a,
            b,
            |w, x, y| x.wrapping_add(y) & bv_mask(w),
            true,
        )
    }

    /// Bitvector subtraction.
    pub fn bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            let w = self.bv_width_of(a);
            return self.bv_const(w, 0);
        }
        if self.term(b).as_bv_const().map(|c| c.1) == Some(0) {
            return a;
        }
        self.bv_binop(
            Kind::BvSub,
            a,
            b,
            |w, x, y| x.wrapping_sub(y) & bv_mask(w),
            false,
        )
    }

    /// Bitvector multiplication.
    pub fn bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_width_of(a);
        for (c, o) in [(a, b), (b, a)] {
            if let Some((_, v)) = self.term(c).as_bv_const() {
                if v == 0 {
                    return self.bv_const(w, 0);
                }
                if v == 1 {
                    return o;
                }
            }
        }
        self.bv_binop(
            Kind::BvMul,
            a,
            b,
            |w, x, y| x.wrapping_mul(y) & bv_mask(w),
            true,
        )
    }

    /// Unsigned bitvector division (SMT-LIB semantics: `x / 0 = all-ones`).
    pub fn bv_udiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            Kind::BvUDiv,
            a,
            b,
            |w, x, y| x.checked_div(y).unwrap_or_else(|| bv_mask(w)),
            false,
        )
    }

    /// Unsigned bitvector remainder (SMT-LIB semantics: `x % 0 = x`).
    pub fn bv_urem(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(
            Kind::BvURem,
            a,
            b,
            |_, x, y| if y == 0 { x } else { x % y },
            false,
        )
    }

    /// Two's-complement negation.
    pub fn bv_neg(&mut self, a: TermId) -> TermId {
        let w = self.bv_width_of(a);
        if let Some((_, v)) = self.term(a).as_bv_const() {
            return self.bv_const(w, v.wrapping_neg() & bv_mask(w));
        }
        self.mk(Kind::BvNeg, vec![a], Sort::BitVec(w))
    }

    /// Bitwise and.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_width_of(a);
        for (c, o) in [(a, b), (b, a)] {
            if let Some((_, v)) = self.term(c).as_bv_const() {
                if v == 0 {
                    return self.bv_const(w, 0);
                }
                if v == bv_mask(w) {
                    return o;
                }
            }
        }
        if a == b {
            return a;
        }
        self.bv_binop(Kind::BvAnd, a, b, |_, x, y| x & y, true)
    }

    /// Bitwise or.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_width_of(a);
        for (c, o) in [(a, b), (b, a)] {
            if let Some((_, v)) = self.term(c).as_bv_const() {
                if v == 0 {
                    return o;
                }
                if v == bv_mask(w) {
                    return self.bv_const(w, bv_mask(w));
                }
            }
        }
        if a == b {
            return a;
        }
        self.bv_binop(Kind::BvOr, a, b, |_, x, y| x | y, true)
    }

    /// Bitwise xor.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            let w = self.bv_width_of(a);
            return self.bv_const(w, 0);
        }
        for (c, o) in [(a, b), (b, a)] {
            if self.term(c).as_bv_const().map(|c| c.1) == Some(0) {
                return o;
            }
        }
        self.bv_binop(Kind::BvXor, a, b, |_, x, y| x ^ y, true)
    }

    /// Bitwise not.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        let w = self.bv_width_of(a);
        if let Some((_, v)) = self.term(a).as_bv_const() {
            return self.bv_const(w, !v & bv_mask(w));
        }
        if self.term(a).kind == Kind::BvNot {
            return self.term(a).args[0];
        }
        self.mk(Kind::BvNot, vec![a], Sort::BitVec(w))
    }

    /// Shift left; shift amounts ≥ width yield zero.
    pub fn bv_shl(&mut self, a: TermId, b: TermId) -> TermId {
        if self.term(b).as_bv_const().map(|c| c.1) == Some(0) {
            return a;
        }
        self.bv_binop(
            Kind::BvShl,
            a,
            b,
            |w, x, y| {
                if y >= w as u128 {
                    0
                } else {
                    (x << y) & bv_mask(w)
                }
            },
            false,
        )
    }

    /// Logical shift right.
    pub fn bv_lshr(&mut self, a: TermId, b: TermId) -> TermId {
        if self.term(b).as_bv_const().map(|c| c.1) == Some(0) {
            return a;
        }
        self.bv_binop(
            Kind::BvLShr,
            a,
            b,
            |w, x, y| if y >= w as u128 { 0 } else { x >> y },
            false,
        )
    }

    /// Arithmetic shift right.
    pub fn bv_ashr(&mut self, a: TermId, b: TermId) -> TermId {
        if self.term(b).as_bv_const().map(|c| c.1) == Some(0) {
            return a;
        }
        self.bv_binop(
            Kind::BvAShr,
            a,
            b,
            |w, x, y| {
                let sx = bv_signed(w, x);
                let sh = y.min(w as u128 - 1) as u32;
                ((sx >> sh) as u128) & bv_mask(w)
            },
            false,
        )
    }

    fn bv_cmp(
        &mut self,
        kind: Kind,
        a: TermId,
        b: TermId,
        fold: impl Fn(u32, u128, u128) -> bool,
        refl: bool,
    ) -> TermId {
        let w = self.bv_width_of(a);
        debug_assert_eq!(w, self.bv_width_of(b));
        if a == b {
            return self.bool_const(refl);
        }
        if let (Some((_, x)), Some((_, y))) =
            (self.term(a).as_bv_const(), self.term(b).as_bv_const())
        {
            return self.bool_const(fold(w, x, y));
        }
        self.mk(kind, vec![a, b], Sort::Bool)
    }

    /// Unsigned less-than.
    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_cmp(Kind::BvUlt, a, b, |_, x, y| x < y, false)
    }

    /// Unsigned less-or-equal.
    pub fn bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_cmp(Kind::BvUle, a, b, |_, x, y| x <= y, true)
    }

    /// Signed less-than.
    pub fn bv_slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_cmp(
            Kind::BvSlt,
            a,
            b,
            |w, x, y| bv_signed(w, x) < bv_signed(w, y),
            false,
        )
    }

    /// Signed less-or-equal.
    pub fn bv_sle(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_cmp(
            Kind::BvSle,
            a,
            b,
            |w, x, y| bv_signed(w, x) <= bv_signed(w, y),
            true,
        )
    }

    /// Concatenation; `hi` supplies the high-order bits.
    ///
    /// Adjacent extracts over the same subject merge back into a single
    /// extract; this collapses the concat chains produced by multi-byte
    /// memory reads (§4.3, "Read after write").
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let wh = self.bv_width_of(hi);
        let wl = self.bv_width_of(lo);
        let w = wh + wl;
        assert!(w <= 128, "concat exceeds 128 bits");
        if let (Some((_, x)), Some((_, y))) =
            (self.term(hi).as_bv_const(), self.term(lo).as_bv_const())
        {
            return self.bv_const(w, (x << wl) | y);
        }
        if let (Kind::Extract { hi: h1, lo: l1 }, Kind::Extract { hi: h2, lo: l2 }) =
            (self.term(hi).kind.clone(), self.term(lo).kind.clone())
        {
            let (s1, s2) = (self.term(hi).args[0], self.term(lo).args[0]);
            if s1 == s2 && l1 == h2 + 1 {
                return self.extract(s1, h1, l2);
            }
        }
        // Zero high part is a zero extension (keeps reassembled multi-byte
        // reads structural so downstream peepholes fire).
        if self.term(hi).as_bv_const().map(|c| c.1) == Some(0) {
            return self.zero_ext(lo, wh);
        }
        self.mk(Kind::Concat, vec![hi, lo], Sort::BitVec(w))
    }

    /// Bit extraction over the inclusive range `[lo, hi]`.
    pub fn extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.bv_width_of(a);
        assert!(hi >= lo && hi < w, "extract range out of bounds");
        let rw = hi - lo + 1;
        if rw == w {
            return a;
        }
        if let Some((_, v)) = self.term(a).as_bv_const() {
            return self.bv_const(rw, (v >> lo) & bv_mask(rw));
        }
        match self.term(a).kind.clone() {
            // Extract of extract composes.
            Kind::Extract { hi: _h0, lo: l0 } => {
                let s = self.term(a).args[0];
                return self.extract(s, l0 + hi, l0 + lo);
            }
            // Extract entirely within one side of a concat narrows.
            Kind::Concat => {
                let h = self.term(a).args[0];
                let l = self.term(a).args[1];
                let wl = self.bv_width_of(l);
                if lo >= wl {
                    return self.extract(h, hi - wl, lo - wl);
                }
                if hi < wl {
                    return self.extract(l, hi, lo);
                }
            }
            // Extract of a zero extension.
            Kind::ZeroExt { .. } => {
                let s = self.term(a).args[0];
                let sw = self.bv_width_of(s);
                if hi < sw {
                    return self.extract(s, hi, lo);
                }
                if lo >= sw {
                    return self.bv_const(rw, 0);
                }
            }
            _ => {}
        }
        self.mk(Kind::Extract { hi, lo }, vec![a], Sort::BitVec(rw))
    }

    /// Zero extension by `extra` bits.
    pub fn zero_ext(&mut self, a: TermId, extra: u32) -> TermId {
        if extra == 0 {
            return a;
        }
        let w = self.bv_width_of(a) + extra;
        assert!(w <= 128);
        if let Some((_, v)) = self.term(a).as_bv_const() {
            return self.bv_const(w, v);
        }
        self.mk(Kind::ZeroExt { extra }, vec![a], Sort::BitVec(w))
    }

    /// Sign extension by `extra` bits.
    pub fn sign_ext(&mut self, a: TermId, extra: u32) -> TermId {
        if extra == 0 {
            return a;
        }
        let w0 = self.bv_width_of(a);
        let w = w0 + extra;
        assert!(w <= 128);
        if let Some((_, v)) = self.term(a).as_bv_const() {
            let sv = bv_signed(w0, v) as u128 & bv_mask(w);
            return self.bv_const(w, sv);
        }
        self.mk(Kind::SignExt { extra }, vec![a], Sort::BitVec(w))
    }

    // ---------------------------------------------------------------- int

    /// N-ary integer addition; constants are combined and zeros dropped.
    pub fn int_add(&mut self, parts: &[TermId]) -> TermId {
        let mut flat: Vec<TermId> = Vec::new();
        let mut acc: i128 = 0;
        for &p in parts {
            match &self.term(p).kind {
                Kind::IntConst(v) => acc = acc.checked_add(*v).expect("integer constant overflow"),
                Kind::IntAdd => {
                    for &q in &self.term(p).args.clone() {
                        if let Kind::IntConst(v) = self.term(q).kind {
                            acc = acc.checked_add(v).expect("integer constant overflow");
                        } else {
                            flat.push(q);
                        }
                    }
                }
                _ => flat.push(p),
            }
        }
        // Cancel `t + (-t)` pairs (pointer-offset round trips produce
        // them, and exact folding keeps array indices syntactically equal).
        flat.sort_unstable();
        let mut i = 0;
        while i < flat.len() {
            let t = flat[i];
            let neg = if self.term(t).kind == Kind::IntNeg {
                Some(self.term(t).args[0])
            } else {
                None
            };
            let partner = match neg {
                Some(inner) => flat.iter().position(|&x| x == inner),
                None => flat
                    .iter()
                    .position(|&x| self.term(x).kind == Kind::IntNeg && self.term(x).args[0] == t),
            };
            match partner {
                Some(j) if j != i => {
                    let (a, b) = (i.max(j), i.min(j));
                    flat.remove(a);
                    flat.remove(b);
                    i = 0;
                }
                _ => i += 1,
            }
        }
        if acc != 0 || flat.is_empty() {
            let c = self.int_const(acc);
            flat.push(c);
        }
        flat.sort_unstable();
        match flat.len() {
            1 => flat[0],
            _ => self.mk(Kind::IntAdd, flat, Sort::Int),
        }
    }

    /// Binary integer addition.
    pub fn int_add2(&mut self, a: TermId, b: TermId) -> TermId {
        self.int_add(&[a, b])
    }

    /// Integer subtraction, lowered to `a + (-b)`.
    pub fn int_sub(&mut self, a: TermId, b: TermId) -> TermId {
        let nb = self.int_neg(b);
        self.int_add(&[a, nb])
    }

    /// Integer negation.
    pub fn int_neg(&mut self, a: TermId) -> TermId {
        if let Kind::IntConst(v) = self.term(a).kind {
            return self.int_const(v.checked_neg().expect("integer negation overflow"));
        }
        if self.term(a).kind == Kind::IntNeg {
            return self.term(a).args[0];
        }
        self.mk(Kind::IntNeg, vec![a], Sort::Int)
    }

    /// Integer multiplication. The solver requires linearity; the builder
    /// folds when either side is constant.
    pub fn int_mul(&mut self, a: TermId, b: TermId) -> TermId {
        if let (Kind::IntConst(x), Kind::IntConst(y)) =
            (self.term(a).kind.clone(), self.term(b).kind.clone())
        {
            return self.int_const(x.checked_mul(y).expect("integer constant overflow"));
        }
        for (c, o) in [(a, b), (b, a)] {
            if let Kind::IntConst(v) = self.term(c).kind {
                if v == 0 {
                    return self.int_const(0);
                }
                if v == 1 {
                    return o;
                }
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(Kind::IntMul, vec![a, b], Sort::Int)
    }

    /// `a <= b` over integers.
    pub fn int_le(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.tru();
        }
        if let (Kind::IntConst(x), Kind::IntConst(y)) =
            (self.term(a).kind.clone(), self.term(b).kind.clone())
        {
            return self.bool_const(x <= y);
        }
        self.mk(Kind::IntLe, vec![a, b], Sort::Bool)
    }

    /// `a < b` over integers.
    pub fn int_lt(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.fls();
        }
        if let (Kind::IntConst(x), Kind::IntConst(y)) =
            (self.term(a).kind.clone(), self.term(b).kind.clone())
        {
            return self.bool_const(x < y);
        }
        self.mk(Kind::IntLt, vec![a, b], Sort::Bool)
    }

    /// `a >= b` over integers (sugar).
    pub fn int_ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.int_le(b, a)
    }

    /// `a > b` over integers (sugar).
    pub fn int_gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.int_lt(b, a)
    }

    // ---------------------------------------------------------------- arrays

    /// `(select a i)`, with syntactic read-over-write short-circuiting.
    ///
    /// The deeper, solver-assisted read-after-write simplification of §4.3
    /// lives in the engine; this builder handles the purely syntactic cases
    /// (identical or concretely distinct indices).
    pub fn select(&mut self, arr: TermId, idx: TermId) -> TermId {
        let (isort, esort) = match self.sort(arr).clone() {
            Sort::Array(i, e) => (*i, *e),
            s => panic!("select on non-array sort {s}"),
        };
        debug_assert_eq!(self.sort(idx), &isort);
        let mut cur = arr;
        loop {
            if self.term(cur).kind != Kind::Store {
                break;
            }
            let a = self.term(cur).args[0];
            let i = self.term(cur).args[1];
            let v = self.term(cur).args[2];
            if i == idx {
                return v;
            }
            match (self.term(i).as_bv_const(), self.term(idx).as_bv_const()) {
                (Some((_, x)), Some((_, y))) if x != y => {
                    cur = a;
                    continue;
                }
                _ => {}
            }
            match (self.term(i).as_int_const(), self.term(idx).as_int_const()) {
                (Some(x), Some(y)) if x != y => {
                    cur = a;
                    continue;
                }
                _ => break,
            }
        }
        self.mk(Kind::Select, vec![cur, idx], esort)
    }

    /// `(store a i v)`.
    pub fn store(&mut self, arr: TermId, idx: TermId, val: TermId) -> TermId {
        let sort = self.sort(arr).clone();
        debug_assert!(matches!(sort, Sort::Array(_, _)));
        self.mk(Kind::Store, vec![arr, idx, val], sort)
    }

    // ---------------------------------------------------------------- slicing

    /// Cone-of-influence slice: a new arena holding only the terms reachable
    /// from `roots`, plus the remapped root ids.
    ///
    /// The arena grows monotonically over a POT run, so late queries assert
    /// over a tiny fraction of the terms ever built; shipping a slice to each
    /// racing portfolio instance instead of cloning the full arena makes
    /// per-query setup proportional to the query, not to the run's history.
    ///
    /// Invariants preserved:
    /// - term *structure* is copied verbatim (no re-simplification), so the
    ///   sliced query serializes to the same SMT-LIB assertions;
    /// - **all** function declarations are copied so `FuncId`s stay stable —
    ///   models key UF interpretations by `FuncId` and callers evaluate those
    ///   models against the original arena;
    /// - variables keep their names (models are name-keyed), and the fresh-
    ///   name counter carries over so downstream fresh vars cannot collide;
    /// - the cone's variables are registered in their original relative
    ///   declaration order. The serializer prints `declare-const`s sorted
    ///   by symbol index, so preserving the order is what makes a slice
    ///   print byte-identically to the full arena — which the persistent
    ///   query cache relies on, since it keys on the serialized text's
    ///   fingerprint. (Found by the `slice_vs_full` fuzzing harness: a
    ///   DFS-order registration reorders declarations whenever the first
    ///   variable reached in the cone is not the first one declared.)
    pub fn slice(&self, roots: &[TermId]) -> (TermArena, Vec<TermId>) {
        let _span = tpot_obs::span_args(
            "smt",
            "slice",
            &[
                ("roots", roots.len().to_string()),
                ("arena_terms", self.len().to_string()),
            ],
        );
        let mut out = TermArena {
            funcs: self.funcs.clone(),
            func_map: self.func_map.clone(),
            fresh_counter: self.fresh_counter,
            ..TermArena::default()
        };
        let mut cone_syms: Vec<u32> = Vec::new();
        {
            let mut seen: HashSet<TermId> = HashSet::new();
            let mut walk: Vec<TermId> = roots.to_vec();
            while let Some(t) = walk.pop() {
                if !seen.insert(t) {
                    continue;
                }
                let node = self.term(t);
                if let Kind::Var(sym) = node.kind {
                    cone_syms.push(sym);
                }
                walk.extend(node.args.iter().copied());
            }
        }
        cone_syms.sort_unstable();
        cone_syms.dedup();
        for sym in cone_syms {
            let (name, sort) = self.vars[sym as usize].clone();
            out.var(&name, sort);
        }
        let mut remap: HashMap<TermId, TermId> = HashMap::new();
        // Iterative post-order DFS (terms can nest deeply).
        let mut stack: Vec<(TermId, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
        while let Some((t, expanded)) = stack.pop() {
            if remap.contains_key(&t) {
                continue;
            }
            let node = self.term(t);
            if !expanded {
                stack.push((t, true));
                for &a in node.args.iter().rev() {
                    if !remap.contains_key(&a) {
                        stack.push((a, false));
                    }
                }
                continue;
            }
            let new_id = match &node.kind {
                Kind::Var(sym) => {
                    let (name, sort) = self.vars[*sym as usize].clone();
                    out.var(&name, sort)
                }
                kind => {
                    let args: Vec<TermId> = node.args.iter().map(|a| remap[a]).collect();
                    out.mk(kind.clone(), args, node.sort.clone())
                }
            };
            remap.insert(t, new_id);
        }
        let new_roots = roots.iter().map(|r| remap[r]).collect();
        (out, new_roots)
    }

    /// Prefix-stable cone-of-influence slice.
    ///
    /// Like [`TermArena::slice`], but every id — terms *and* variable
    /// symbols — is assigned in root-by-root encounter order. That makes the
    /// output a function of the root *prefix* only: for any `k`,
    /// `slice_prefix(&roots[..k])` produces an arena that is literally a
    /// prefix of `slice_prefix(roots)`'s (same terms at the same ids, same
    /// remapped roots). Incremental solve sessions key their state on the
    /// path-condition prefix and depend on exactly this stability: a query
    /// extending an earlier one must map shared terms to identical ids so
    /// the session's `TermId`-keyed bit-blast caches keep hitting.
    ///
    /// [`TermArena::slice`] instead registers the cone's variables in
    /// original declaration order, which makes the slice *serialize*
    /// byte-identically to the full arena (the persistent query cache keys
    /// on that text) but lets a late root perturb the ids of earlier ones —
    /// hence two functions.
    pub fn slice_prefix(&self, roots: &[TermId]) -> (TermArena, Vec<TermId>) {
        let _span = tpot_obs::span_args(
            "smt",
            "slice_prefix",
            &[
                ("roots", roots.len().to_string()),
                ("arena_terms", self.len().to_string()),
            ],
        );
        let mut out = TermArena {
            funcs: self.funcs.clone(),
            func_map: self.func_map.clone(),
            fresh_counter: self.fresh_counter,
            ..TermArena::default()
        };
        let mut remap: HashMap<TermId, TermId> = HashMap::new();
        let mut new_roots: Vec<TermId> = Vec::with_capacity(roots.len());
        for &root in roots {
            // Iterative post-order DFS per root; earlier roots' terms are
            // already interned and are skipped via `remap`.
            let mut stack: Vec<(TermId, bool)> = vec![(root, false)];
            while let Some((t, expanded)) = stack.pop() {
                if remap.contains_key(&t) {
                    continue;
                }
                let node = self.term(t);
                if !expanded {
                    stack.push((t, true));
                    for &a in node.args.iter().rev() {
                        if !remap.contains_key(&a) {
                            stack.push((a, false));
                        }
                    }
                    continue;
                }
                let new_id = match &node.kind {
                    Kind::Var(sym) => {
                        let (name, sort) = self.vars[*sym as usize].clone();
                        out.var(&name, sort)
                    }
                    kind => {
                        let args: Vec<TermId> = node.args.iter().map(|a| remap[a]).collect();
                        out.mk(kind.clone(), args, node.sort.clone())
                    }
                };
                remap.insert(t, new_id);
            }
            new_roots.push(remap[&root]);
        }
        (out, new_roots)
    }

    /// Rough in-memory footprint estimate in bytes (terms, hash-cons map,
    /// interned names). Used by the slicing statistics to report arena bytes
    /// shipped per query versus the full arena.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        // Each term appears twice: in the vec and as a hash-cons map key.
        let mut b = self.terms.len() * 2 * size_of::<Term>();
        for t in &self.terms {
            b += t.args.len() * 2 * size_of::<TermId>();
        }
        for (name, _) in &self.vars {
            // name in vars + var_map key + map entry overhead.
            b += 2 * name.len() + 2 * size_of::<(String, Sort)>();
        }
        for f in &self.funcs {
            b += 2 * f.name.len() + size_of::<FuncDecl>() + f.args.len() * size_of::<Sort>();
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a varied root list exercising vars, bv ops, bool structure,
    /// ints, arrays, and UFs, with sharing across roots.
    fn prefix_fixture() -> (TermArena, Vec<TermId>) {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(32));
        let y = a.var("y", Sort::BitVec(32));
        let p = a.var("p", Sort::Bool);
        let ix = a.var("ix", Sort::Int);
        let mem = a.var("mem", Sort::byte_array());
        let f = a.declare_func("f", vec![Sort::Int], Sort::Int);
        let c7 = a.bv_const(32, 7);
        let sum = a.bv_add(x, y);
        let r0 = a.bv_ult(sum, c7);
        let fx = a.apply(f, vec![ix]);
        let c3 = a.int_const(3);
        let r1_le = a.int_le(fx, c3);
        let r1 = a.or2(p, r1_le);
        let i = a.bv64(4);
        let rd = a.select(mem, i);
        let cb = a.bv_const(8, 0x5c);
        let r2 = a.eq(rd, cb);
        let r3 = a.eq(sum, c7); // shares `sum` with r0
        let np = a.not(p);
        let r4 = a.and2(np, r0); // shares r0
        (a, vec![r0, r1, r2, r3, r4])
    }

    #[test]
    fn slice_prefix_is_prefix_stable() {
        let (a, roots) = prefix_fixture();
        let (full, full_roots) = a.slice_prefix(&roots);
        for k in 0..=roots.len() {
            let (part, part_roots) = a.slice_prefix(&roots[..k]);
            assert!(part.len() <= full.len());
            // Same terms at the same ids...
            for i in 0..part.len() {
                let id = TermId(i as u32);
                assert_eq!(
                    part.term(id),
                    full.term(id),
                    "term {i} diverges at prefix {k}"
                );
            }
            // ...same variable symbols in the same order...
            assert_eq!(part.vars(), &full.vars()[..part.vars().len()]);
            // ...and identical remapped roots.
            assert_eq!(part_roots, full_roots[..k]);
        }
    }

    #[test]
    fn slice_prefix_late_root_cannot_perturb_early_ids() {
        let (mut a, roots) = prefix_fixture();
        let (part, part_roots) = a.slice_prefix(&roots[..2]);
        // A new root over fresh, earlier-declared-looking structure.
        let z = a.var("z", Sort::BitVec(32));
        let c = a.bv_const(32, 1);
        let extra = a.eq(z, c);
        let mut extended = roots[..2].to_vec();
        extended.push(extra);
        let (ext, ext_roots) = a.slice_prefix(&extended);
        assert_eq!(&ext_roots[..2], &part_roots[..]);
        for i in 0..part.len() {
            let id = TermId(i as u32);
            assert_eq!(part.term(id), ext.term(id));
        }
    }

    #[test]
    fn slice_prefix_preserves_semantics() {
        let (a, roots) = prefix_fixture();
        let (sliced, new_roots) = a.slice_prefix(&roots);
        // Same kinds/sorts at the remapped roots, vars keep their names.
        for (&old, &new) in roots.iter().zip(new_roots.iter()) {
            assert_eq!(a.term(old).kind, sliced.term(new).kind);
            assert_eq!(a.sort(old), sliced.sort(new));
        }
        // Function declarations are copied verbatim (FuncIds stay stable).
        assert_eq!(a.funcs().len(), sliced.funcs().len());
        for (fa, fb) in a.funcs().iter().zip(sliced.funcs().iter()) {
            assert_eq!(fa.name, fb.name);
        }
    }

    #[test]
    fn hash_consing_dedups() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(32));
        let y = a.var("y", Sort::BitVec(32));
        let s1 = a.bv_add(x, y);
        let s2 = a.bv_add(y, x); // commutative normalization
        assert_eq!(s1, s2);
        let x2 = a.var("x", Sort::BitVec(32));
        assert_eq!(x, x2);
    }

    #[test]
    fn constant_folding_bv() {
        let mut a = TermArena::new();
        let c1 = a.bv_const(8, 200);
        let c2 = a.bv_const(8, 100);
        let s = a.bv_add(c1, c2);
        assert_eq!(a.term(s).as_bv_const(), Some((8, 44))); // wraps mod 256
        let m = a.bv_mul(c1, c2);
        assert_eq!(a.term(m).as_bv_const(), Some((8, (200 * 100) % 256)));
        let d = a.bv_udiv(c1, c2);
        assert_eq!(a.term(d).as_bv_const(), Some((8, 2)));
        let z = a.bv_const(8, 0);
        let dz = a.bv_udiv(c1, z);
        assert_eq!(a.term(dz).as_bv_const(), Some((8, 0xff)));
    }

    #[test]
    fn add_zero_and_reassociation() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(64));
        let zero = a.bv64(0);
        assert_eq!(a.bv_add(x, zero), x);
        let four = a.bv64(4);
        let eight = a.bv64(8);
        let p = a.bv_add(x, four);
        let q = a.bv_add(p, eight);
        let twelve = a.bv64(12);
        let direct = a.bv_add(x, twelve);
        assert_eq!(q, direct);
    }

    #[test]
    fn and_or_simplification() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let q = a.var("q", Sort::Bool);
        let t = a.tru();
        let f = a.fls();
        assert_eq!(a.and(&[p, t]), p);
        assert_eq!(a.and(&[p, f]), f);
        assert_eq!(a.or(&[p, f]), p);
        assert_eq!(a.or(&[p, t]), t);
        let np = a.not(p);
        assert_eq!(a.and(&[p, np, q]), f);
        assert_eq!(a.or(&[p, np]), t);
        assert_eq!(a.and(&[p, p]), p);
    }

    #[test]
    fn not_involution_and_eq() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let np = a.not(p);
        assert_eq!(a.not(np), p);
        let x = a.var("x", Sort::Int);
        assert_eq!(a.eq(x, x), a.tru());
        let c1 = a.int_const(3);
        let c2 = a.int_const(4);
        assert_eq!(a.eq(c1, c2), a.fls());
    }

    #[test]
    fn extract_concat_fusion() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(64));
        // Reading 2 bytes of x and concatenating them merges back.
        let b1 = a.extract(x, 15, 8);
        let b0 = a.extract(x, 7, 0);
        let r = a.concat(b1, b0);
        assert_eq!(r, a.extract(x, 15, 0));
        // Full-width byte reassembly yields x itself.
        let mut bytes = Vec::new();
        for i in (0..8).rev() {
            bytes.push(a.extract(x, i * 8 + 7, i * 8));
        }
        let mut acc = bytes[0];
        for &b in &bytes[1..] {
            acc = a.concat(acc, b);
        }
        assert_eq!(acc, x);
    }

    #[test]
    fn extract_of_constant_and_zext() {
        let mut a = TermArena::new();
        let c = a.bv_const(16, 0xabcd);
        let hi = a.extract(c, 15, 8);
        assert_eq!(a.term(hi).as_bv_const(), Some((8, 0xab)));
        let x = a.var("x", Sort::BitVec(8));
        let zx = a.zero_ext(x, 8);
        let top = a.extract(zx, 15, 8);
        assert_eq!(a.term(top).as_bv_const(), Some((8, 0)));
        let bot = a.extract(zx, 7, 0);
        assert_eq!(bot, x);
    }

    #[test]
    fn int_add_combines_constants() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let c3 = a.int_const(3);
        let c4 = a.int_const(4);
        let s1 = a.int_add(&[x, c3, c4]);
        let c7 = a.int_const(7);
        let s2 = a.int_add(&[x, c7]);
        assert_eq!(s1, s2);
        let zero = a.int_const(0);
        assert_eq!(a.int_add(&[x, zero]), x);
    }

    #[test]
    fn int_sub_as_neg_add() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let d = a.int_sub(x, x);
        // x + (-x) is not folded structurally, but x - x with equal ids: the
        // n-ary sum keeps both; check the concrete fold path instead.
        let c5 = a.int_const(5);
        let c2 = a.int_const(2);
        let r = a.int_sub(c5, c2);
        assert_eq!(a.term(r).as_int_const(), Some(3));
        let _ = d;
    }

    #[test]
    fn ite_simplifies() {
        let mut a = TermArena::new();
        let c = a.var("c", Sort::Bool);
        let x = a.var("x", Sort::BitVec(8));
        let y = a.var("y", Sort::BitVec(8));
        let t = a.tru();
        assert_eq!(a.ite(t, x, y), x);
        assert_eq!(a.ite(c, x, x), x);
    }

    #[test]
    fn select_over_store() {
        let mut a = TermArena::new();
        let arr = a.var("m", Sort::byte_array());
        let i0 = a.bv64(0);
        let i1 = a.bv64(1);
        let v = a.bv_const(8, 0x7f);
        let st = a.store(arr, i0, v);
        assert_eq!(a.select(st, i0), v);
        // Distinct concrete index looks through the store.
        let s = a.select(st, i1);
        let direct = a.select(arr, i1);
        assert_eq!(s, direct);
    }

    #[test]
    fn uf_declaration_and_application() {
        let mut a = TermArena::new();
        let f = a.declare_func("tpot_bv2int", vec![Sort::BitVec(64)], Sort::Int);
        let f2 = a.declare_func("tpot_bv2int", vec![Sort::BitVec(64)], Sort::Int);
        assert_eq!(f, f2);
        let x = a.var("x", Sort::BitVec(64));
        let app1 = a.apply(f, vec![x]);
        let app2 = a.apply(f, vec![x]);
        assert_eq!(app1, app2);
        assert!(a.sort(app1).is_int());
    }

    #[test]
    fn shifts_fold() {
        let mut a = TermArena::new();
        let c = a.bv_const(8, 0b1000_0001);
        let one = a.bv_const(8, 1);
        let big = a.bv_const(8, 9);
        let shl = a.bv_shl(c, one);
        assert_eq!(a.term(shl).as_bv_const(), Some((8, 0b0000_0010)));
        let lshr = a.bv_lshr(c, one);
        assert_eq!(a.term(lshr).as_bv_const(), Some((8, 0b0100_0000)));
        let ashr = a.bv_ashr(c, one);
        assert_eq!(a.term(ashr).as_bv_const(), Some((8, 0b1100_0000)));
        let over = a.bv_shl(c, big);
        assert_eq!(a.term(over).as_bv_const(), Some((8, 0)));
    }

    #[test]
    fn signed_comparisons() {
        let mut a = TermArena::new();
        let minus_one = a.bv_const(8, 0xff);
        let one = a.bv_const(8, 1);
        assert_eq!(a.bv_slt(minus_one, one), a.tru());
        assert_eq!(a.bv_ult(minus_one, one), a.fls());
        assert_eq!(a.bv_sle(one, one), a.tru());
    }

    #[test]
    #[should_panic(expected = "different sort")]
    fn var_sort_conflict_panics() {
        let mut a = TermArena::new();
        let _ = a.var("x", Sort::Int);
        let _ = a.var("x", Sort::Bool);
    }

    #[test]
    fn slice_extracts_cone_only() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(64));
        let y = a.var("y", Sort::BitVec(64));
        let sum = a.bv_add(x, y);
        let c = a.bv64(7);
        let root = a.bv_ult(sum, c);
        // Unrelated garbage the cone must not ship.
        for i in 0..100 {
            let v = a.var(&format!("junk{i}"), Sort::Int);
            let k = a.int_const(i);
            let _ = a.int_le(v, k);
        }
        let total = a.len();
        let (sliced, roots) = a.slice(&[root]);
        assert_eq!(roots.len(), 1);
        // x, y, sum, 7, root = 5 terms.
        assert_eq!(sliced.len(), 5);
        assert!(sliced.len() < total);
        assert_eq!(sliced.vars().len(), 2);
        assert!(sliced.approx_bytes() < a.approx_bytes());
        // The sliced root serializes to the identical assertion.
        let orig = crate::print::to_smtlib(&a, &[root]);
        let new = crate::print::to_smtlib(&sliced, &roots);
        assert_eq!(orig, new);
    }

    #[test]
    fn slice_preserves_func_ids() {
        let mut a = TermArena::new();
        let f = a.declare_func("f_unused", vec![Sort::Int], Sort::Int);
        let g = a.declare_func("g_used", vec![Sort::Int], Sort::Int);
        let x = a.var("x", Sort::Int);
        let gx = a.apply(g, vec![x]);
        let zero = a.int_const(0);
        let root = a.int_le(zero, gx);
        let (sliced, roots) = a.slice(&[root]);
        // FuncIds stay stable even when earlier funcs are unreachable: the
        // Apply node in the slice still refers to `g_used`.
        assert_eq!(sliced.func(g).name, "g_used");
        assert_eq!(sliced.func(f).name, "f_unused");
        match &sliced.term(roots[0]).kind {
            Kind::IntLe => {}
            k => panic!("unexpected kind {k:?}"),
        }
        let txt = crate::print::to_smtlib(&sliced, &roots);
        assert!(txt.contains("g_used"));
        assert!(!txt.contains("f_unused"), "unused UF must not be declared");
    }

    #[test]
    fn slice_shares_structure() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(8));
        let y = a.var("y", Sort::BitVec(8));
        let s = a.bv_add(x, y);
        let t = a.bv_mul(s, s); // shared subterm
        let c = a.bv_const(8, 3);
        let root = a.eq(t, c);
        let (sliced, roots) = a.slice(&[root, root]);
        assert_eq!(roots[0], roots[1], "duplicate roots map to one id");
        // x, y, s, t, 3, root: sharing preserved, nothing duplicated.
        assert_eq!(sliced.len(), 6);
    }

    #[test]
    fn slice_is_serialization_transparent_regardless_of_visit_order() {
        // Regression (found by tpot-fuzz, slice_vs_full): the serializer
        // prints `declare-const`s sorted by variable symbol index, so the
        // slice must register cone variables in their original relative
        // declaration order — not in DFS-encounter order. Here the DFS
        // from the root reaches `b` before `a`; before the fix the sliced
        // arena printed `(declare-const b ...)` first, so the same query
        // produced two different texts (and two different persistent-cache
        // fingerprints) depending on whether it had been sliced.
        let mut a = TermArena::new();
        let va = a.var("a", Sort::BitVec(8));
        let vb = a.var("b", Sort::BitVec(8));
        let vc = a.var("c", Sort::BitVec(8));
        // bv_ult(b, a): args visited b-first from the root.
        let cmp = a.bv_ult(vb, va);
        let e = a.eq(vc, va);
        let root = a.and2(cmp, e);
        let (sliced, roots) = a.slice(&[root]);
        let orig = crate::print::to_smtlib(&a, &[root]);
        let new = crate::print::to_smtlib(&sliced, &roots);
        assert_eq!(orig, new, "slice must not reorder declarations");
        assert_eq!(
            crate::print::query_fingerprint(&orig),
            crate::print::query_fingerprint(&new)
        );
        let names: Vec<&str> = sliced.vars().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn slice_empty_roots() {
        let mut a = TermArena::new();
        let _ = a.var("x", Sort::Int);
        let (sliced, roots) = a.slice(&[]);
        assert!(sliced.is_empty());
        assert!(roots.is_empty());
    }
}
