//! Concrete evaluation of terms under a model.
//!
//! Used to (a) validate solver models a posteriori — the paper recommends
//! validating portfolio results because "a solver portfolio is more often
//! wrong than an individual solver" (§4.4) — and (b) as the ground-truth
//! oracle in this repository's property tests.

use std::collections::HashMap;

use crate::arena::TermArena;
use crate::model::{Model, Value};
#[cfg(test)]
use crate::sort::Sort;
use crate::sort::{bv_mask, bv_signed};
use crate::term::{Kind, TermId};

/// Errors during concrete evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no value in the model and no default could be used.
    UnboundVar(String),
    /// Integer arithmetic left the `i128` range.
    Overflow,
}

/// Evaluates `t` under `model`. Unbound variables evaluate to zero of their
/// sort (solver models are partial: variables absent from a model are
/// unconstrained).
pub fn eval(arena: &TermArena, model: &Model, t: TermId) -> Result<Value, EvalError> {
    let mut cache: HashMap<TermId, Value> = HashMap::new();
    eval_rec(arena, model, t, &mut cache)
}

fn eval_rec(
    arena: &TermArena,
    model: &Model,
    t: TermId,
    cache: &mut HashMap<TermId, Value>,
) -> Result<Value, EvalError> {
    if let Some(v) = cache.get(&t) {
        return Ok(v.clone());
    }
    let node = arena.term(t);
    let mut args: Vec<Value> = Vec::with_capacity(node.args.len());
    for &a in &node.args {
        args.push(eval_rec(arena, model, a, cache)?);
    }
    let sort = node.sort.clone();
    let v = match &node.kind {
        Kind::True => Value::Bool(true),
        Kind::False => Value::Bool(false),
        Kind::BvConst(v) => {
            let w = sort.bv_width().unwrap();
            Value::BitVec(w, *v)
        }
        Kind::IntConst(v) => Value::Int(*v),
        Kind::Var(_) => {
            let name = arena.var_name(t);
            match model.var(name) {
                Some(v) => v.clone(),
                None => Value::zero_of(&sort),
            }
        }
        Kind::Not => Value::Bool(!args[0].as_bool()),
        Kind::And => Value::Bool(args.iter().all(Value::as_bool)),
        Kind::Or => Value::Bool(args.iter().any(Value::as_bool)),
        Kind::Xor => Value::Bool(args[0].as_bool() ^ args[1].as_bool()),
        Kind::Implies => Value::Bool(!args[0].as_bool() || args[1].as_bool()),
        Kind::Ite => {
            if args[0].as_bool() {
                args[1].clone()
            } else {
                args[2].clone()
            }
        }
        Kind::Eq => Value::Bool(values_equal(&args[0], &args[1])),
        Kind::BvNeg => {
            let (w, v) = args[0].as_bv();
            Value::BitVec(w, v.wrapping_neg() & bv_mask(w))
        }
        Kind::BvAdd => bv_binop(&args, |w, x, y| x.wrapping_add(y) & bv_mask(w)),
        Kind::BvSub => bv_binop(&args, |w, x, y| x.wrapping_sub(y) & bv_mask(w)),
        Kind::BvMul => bv_binop(&args, |w, x, y| x.wrapping_mul(y) & bv_mask(w)),
        Kind::BvUDiv => bv_binop(&args, |w, x, y| {
            x.checked_div(y).unwrap_or_else(|| bv_mask(w))
        }),
        Kind::BvURem => bv_binop(&args, |_, x, y| if y == 0 { x } else { x % y }),
        Kind::BvAnd => bv_binop(&args, |_, x, y| x & y),
        Kind::BvOr => bv_binop(&args, |_, x, y| x | y),
        Kind::BvXor => bv_binop(&args, |_, x, y| x ^ y),
        Kind::BvNot => {
            let (w, v) = args[0].as_bv();
            Value::BitVec(w, !v & bv_mask(w))
        }
        Kind::BvShl => bv_binop(&args, |w, x, y| {
            if y >= w as u128 {
                0
            } else {
                (x << y) & bv_mask(w)
            }
        }),
        Kind::BvLShr => bv_binop(&args, |w, x, y| if y >= w as u128 { 0 } else { x >> y }),
        Kind::BvAShr => bv_binop(&args, |w, x, y| {
            let sx = bv_signed(w, x);
            let sh = y.min(w as u128 - 1) as u32;
            ((sx >> sh) as u128) & bv_mask(w)
        }),
        Kind::BvUlt => bv_cmp(&args, |_, x, y| x < y),
        Kind::BvUle => bv_cmp(&args, |_, x, y| x <= y),
        Kind::BvSlt => bv_cmp(&args, |w, x, y| bv_signed(w, x) < bv_signed(w, y)),
        Kind::BvSle => bv_cmp(&args, |w, x, y| bv_signed(w, x) <= bv_signed(w, y)),
        Kind::Concat => {
            let (wh, vh) = args[0].as_bv();
            let (wl, vl) = args[1].as_bv();
            Value::BitVec(wh + wl, (vh << wl) | vl)
        }
        Kind::Extract { hi, lo } => {
            let (_, v) = args[0].as_bv();
            Value::BitVec(hi - lo + 1, (v >> lo) & bv_mask(hi - lo + 1))
        }
        Kind::ZeroExt { extra } => {
            let (w, v) = args[0].as_bv();
            Value::BitVec(w + extra, v)
        }
        Kind::SignExt { extra } => {
            let (w, v) = args[0].as_bv();
            let nw = w + extra;
            Value::BitVec(nw, (bv_signed(w, v) as u128) & bv_mask(nw))
        }
        Kind::IntAdd => {
            let mut acc: i128 = 0;
            for a in &args {
                acc = acc.checked_add(a.as_int()).ok_or(EvalError::Overflow)?;
            }
            Value::Int(acc)
        }
        Kind::IntSub => Value::Int(
            args[0]
                .as_int()
                .checked_sub(args[1].as_int())
                .ok_or(EvalError::Overflow)?,
        ),
        Kind::IntMul => Value::Int(
            args[0]
                .as_int()
                .checked_mul(args[1].as_int())
                .ok_or(EvalError::Overflow)?,
        ),
        Kind::IntNeg => Value::Int(args[0].as_int().checked_neg().ok_or(EvalError::Overflow)?),
        Kind::IntLe => Value::Bool(args[0].as_int() <= args[1].as_int()),
        Kind::IntLt => Value::Bool(args[0].as_int() < args[1].as_int()),
        Kind::Select => match &args[0] {
            Value::Array { entries, default } => {
                let key = args[1].key_repr();
                entries
                    .get(&key)
                    .map(|v| (**v).clone())
                    .unwrap_or_else(|| (**default).clone())
            }
            other => panic!("select on non-array value {other:?}"),
        },
        Kind::Store => match args[0].clone() {
            Value::Array {
                mut entries,
                default,
            } => {
                entries.insert(args[1].key_repr(), Box::new(args[2].clone()));
                Value::Array { entries, default }
            }
            other => panic!("store on non-array value {other:?}"),
        },
        Kind::Apply(f) => {
            let decl = arena.func(*f);
            model.apply_func(*f, &args, &decl.ret)
        }
    };
    cache.insert(t, v.clone());
    Ok(v)
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Array { .. }, Value::Array { .. }) => {
            panic!("array extensional equality not supported in eval")
        }
        _ => a == b,
    }
}

fn bv_binop(args: &[Value], f: impl Fn(u32, u128, u128) -> u128) -> Value {
    let (w, x) = args[0].as_bv();
    let (_, y) = args[1].as_bv();
    Value::BitVec(w, f(w, x, y))
}

fn bv_cmp(args: &[Value], f: impl Fn(u32, u128, u128) -> bool) -> Value {
    let (w, x) = args[0].as_bv();
    let (_, y) = args[1].as_bv();
    Value::Bool(f(w, x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_arith() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(8));
        let c = a.bv_const(8, 10);
        let s = a.bv_add(x, c);
        let mut m = Model::new();
        m.set_var("x", Value::BitVec(8, 250));
        let v = eval(&a, &m, s).unwrap();
        assert_eq!(v, Value::BitVec(8, 4)); // wraps
    }

    #[test]
    fn eval_unbound_defaults_to_zero() {
        let mut a = TermArena::new();
        let x = a.var("u", Sort::Int);
        let one = a.int_const(1);
        let s = a.int_add2(x, one);
        let m = Model::new();
        assert_eq!(eval(&a, &m, s).unwrap(), Value::Int(1));
    }

    #[test]
    fn eval_store_select() {
        let mut a = TermArena::new();
        let arr = a.var("mem", Sort::byte_array());
        let i = a.var("i", Sort::BitVec(64));
        let v = a.bv_const(8, 9);
        let st = a.store(arr, i, v);
        let j = a.bv64(3);
        let rd = a.select(st, j);
        let mut m = Model::new();
        m.set_var("i", Value::BitVec(64, 3));
        assert_eq!(eval(&a, &m, rd).unwrap(), Value::BitVec(8, 9));
        m.set_var("i", Value::BitVec(64, 4));
        assert_eq!(eval(&a, &m, rd).unwrap(), Value::BitVec(8, 0));
    }

    #[test]
    fn eval_uf() {
        let mut a = TermArena::new();
        let f = a.declare_func("h", vec![Sort::Int], Sort::Int);
        let x = a.int_const(7);
        let app = a.apply(f, vec![x]);
        let mut m = Model::new();
        let mut fi = crate::model::FuncInterp::default();
        fi.entries.insert(vec![7u128], Value::Int(99));
        m.funcs.insert(f, fi);
        assert_eq!(eval(&a, &m, app).unwrap(), Value::Int(99));
    }

    #[test]
    fn eval_sign_ops() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(8));
        let sx = a.sign_ext(x, 8);
        let mut m = Model::new();
        m.set_var("x", Value::BitVec(8, 0xff));
        assert_eq!(eval(&a, &m, sx).unwrap(), Value::BitVec(16, 0xffff));
    }

    #[test]
    fn int_overflow_detected() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let m1 = a.int_mul(x, y);
        let mut m = Model::new();
        m.set_var("x", Value::Int(i128::MAX));
        m.set_var("y", Value::Int(2));
        assert_eq!(eval(&a, &m, m1), Err(EvalError::Overflow));
    }
}
