//! Models: satisfying assignments returned by the solver.

use std::collections::HashMap;
use std::fmt;

use crate::arena::FuncId;
use crate::sort::Sort;

/// A concrete value of some sort.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// Bitvector value (width, zero-extended bits).
    BitVec(u32, u128),
    /// Integer value.
    Int(i128),
    /// Array value: explicit entries plus a default for all other indices.
    Array {
        /// Explicitly stored entries (index value → element value). Index
        /// values are stored through [`Value::key_repr`].
        entries: HashMap<u128, Box<Value>>,
        /// Element value at all indices not in `entries`.
        default: Box<Value>,
    },
}

impl Value {
    /// Canonical `u128` representation of a value usable as an array index
    /// key (bitvector bits, or two's-complement integer bits).
    pub fn key_repr(&self) -> u128 {
        match self {
            Value::Bool(b) => *b as u128,
            Value::BitVec(_, v) => *v,
            Value::Int(v) => *v as u128,
            Value::Array { .. } => panic!("array value used as index"),
        }
    }

    /// Boolean payload.
    ///
    /// # Panics
    /// Panics if the value is not a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// Bitvector payload.
    ///
    /// # Panics
    /// Panics if the value is not a bitvector.
    pub fn as_bv(&self) -> (u32, u128) {
        match self {
            Value::BitVec(w, v) => (*w, *v),
            other => panic!("expected BitVec, got {other:?}"),
        }
    }

    /// Integer payload.
    ///
    /// # Panics
    /// Panics if the value is not an integer.
    pub fn as_int(&self) -> i128 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// A default ("zero") value of the given sort.
    pub fn zero_of(sort: &Sort) -> Value {
        match sort {
            Sort::Bool => Value::Bool(false),
            Sort::BitVec(w) => Value::BitVec(*w, 0),
            Sort::Int => Value::Int(0),
            Sort::Array(_, e) => Value::Array {
                entries: HashMap::new(),
                default: Box::new(Value::zero_of(e)),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::BitVec(w, v) => write!(f, "#x{v:0>width$x}", width = (*w as usize).div_ceil(4)),
            Value::Int(v) => write!(f, "{v}"),
            Value::Array { entries, default } => {
                write!(f, "[")?;
                let mut keys: Vec<_> = entries.keys().collect();
                keys.sort();
                for k in keys {
                    write!(f, "{k}:{} ", entries[k])?;
                }
                write!(f, "else:{default}]")
            }
        }
    }
}

/// Interpretation of an uninterpreted function: a finite table plus a
/// default value.
#[derive(Clone, Debug, Default)]
pub struct FuncInterp {
    /// Argument tuples (via [`Value::key_repr`]) to result.
    pub entries: HashMap<Vec<u128>, Value>,
    /// Result for argument tuples not in the table.
    pub default: Option<Value>,
}

/// A model: assignment of values to variables and interpretations to
/// uninterpreted functions.
///
/// Models back TPot's counterexamples (§3.2): when a POT fails, the model
/// over the initial symbolic state *is* the "assignment of values to
/// variables" the paper reports.
#[derive(Clone, Debug, Default)]
pub struct Model {
    /// Variable name → value.
    pub vars: HashMap<String, Value>,
    /// Function id → interpretation.
    pub funcs: HashMap<FuncId, FuncInterp>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a variable by name.
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Sets a variable's value.
    pub fn set_var(&mut self, name: &str, v: Value) {
        self.vars.insert(name.to_string(), v);
    }

    /// Applies a function interpretation, falling back to the default, then
    /// to zero of the return sort.
    pub fn apply_func(&self, f: FuncId, args: &[Value], ret: &Sort) -> Value {
        let key: Vec<u128> = args.iter().map(Value::key_repr).collect();
        if let Some(fi) = self.funcs.get(&f) {
            if let Some(v) = fi.entries.get(&key) {
                return v.clone();
            }
            if let Some(d) = &fi.default {
                return d.clone();
            }
        }
        Value::zero_of(ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero_of(&Sort::Bool), Value::Bool(false));
        assert_eq!(Value::zero_of(&Sort::BitVec(8)), Value::BitVec(8, 0));
        match Value::zero_of(&Sort::byte_array()) {
            Value::Array { default, .. } => assert_eq!(*default, Value::BitVec(8, 0)),
            _ => panic!(),
        }
    }

    #[test]
    fn func_interp_lookup() {
        let mut m = Model::new();
        let fid = FuncId(0);
        let mut fi = FuncInterp::default();
        fi.entries.insert(vec![5u128], Value::Int(42));
        fi.default = Some(Value::Int(0));
        m.funcs.insert(fid, fi);
        let hit = m.apply_func(fid, &[Value::Int(5)], &Sort::Int);
        assert_eq!(hit, Value::Int(42));
        let miss = m.apply_func(fid, &[Value::Int(6)], &Sort::Int);
        assert_eq!(miss, Value::Int(0));
    }

    #[test]
    fn display_bv() {
        assert_eq!(Value::BitVec(8, 0xab).to_string(), "#xab");
        assert_eq!(Value::BitVec(64, 1).to_string(), "#x0000000000000001");
    }
}
