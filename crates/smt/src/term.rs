//! Term nodes of the hash-consed DAG.

use crate::arena::FuncId;
use crate::sort::Sort;

/// Index of a term in a [`crate::TermArena`].
///
/// Because terms are hash-consed, `TermId` equality is structural equality of
/// the underlying terms (within one arena).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

impl TermId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The operator / leaf kind of a term node.
///
/// N-ary operators (`And`, `Or`, `IntAdd`, …) keep their operands in the
/// node's argument list; fixed-arity operators document their arity here.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Kind {
    // -- Leaves --------------------------------------------------------
    /// Boolean constant `true`.
    True,
    /// Boolean constant `false`.
    False,
    /// Bitvector constant; the width lives in the node's sort.
    BvConst(u128),
    /// Integer constant.
    IntConst(i128),
    /// Free variable; the `u32` is an arena-level symbol index
    /// (see [`crate::TermArena::var`]). The name is stored in the arena.
    Var(u32),

    // -- Core / Boolean -------------------------------------------------
    /// Logical negation (1 arg).
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// Boolean exclusive or (2 args).
    Xor,
    /// Implication (2 args).
    Implies,
    /// If-then-else (3 args: cond, then, else); then/else share any sort.
    Ite,
    /// Equality (2 args of equal sort).
    Eq,

    // -- Bitvector ------------------------------------------------------
    /// Two's-complement negation (1 arg).
    BvNeg,
    /// Addition (2 args).
    BvAdd,
    /// Subtraction (2 args).
    BvSub,
    /// Multiplication (2 args).
    BvMul,
    /// Unsigned division (2 args); division by zero yields all-ones, as in
    /// SMT-LIB.
    BvUDiv,
    /// Unsigned remainder (2 args); remainder by zero yields the dividend.
    BvURem,
    /// Bitwise and/or/xor/not.
    BvAnd,
    /// Bitwise or (2 args).
    BvOr,
    /// Bitwise xor (2 args).
    BvXor,
    /// Bitwise not (1 arg).
    BvNot,
    /// Shift left (2 args); shifts ≥ width yield zero.
    BvShl,
    /// Logical shift right (2 args).
    BvLShr,
    /// Arithmetic shift right (2 args).
    BvAShr,
    /// Unsigned less-than (2 args, Bool result).
    BvUlt,
    /// Unsigned less-or-equal.
    BvUle,
    /// Signed less-than.
    BvSlt,
    /// Signed less-or-equal.
    BvSle,
    /// Concatenation (2 args); arg0 becomes the high bits, as in SMT-LIB.
    Concat,
    /// Bit extraction; inclusive bit range `[lo, hi]` of arg0.
    Extract { hi: u32, lo: u32 },
    /// Zero extension by `extra` bits (1 arg).
    ZeroExt { extra: u32 },
    /// Sign extension by `extra` bits (1 arg).
    SignExt { extra: u32 },

    // -- Integer --------------------------------------------------------
    /// N-ary integer addition.
    IntAdd,
    /// Integer subtraction (2 args).
    IntSub,
    /// Integer multiplication (2 args). The solver only supports linear
    /// occurrences (at least one side a constant at solve time).
    IntMul,
    /// Integer negation (1 arg).
    IntNeg,
    /// `<=` over integers (2 args, Bool result).
    IntLe,
    /// `<` over integers.
    IntLt,

    // -- Arrays ----------------------------------------------------------
    /// `(select a i)` (2 args).
    Select,
    /// `(store a i v)` (3 args).
    Store,

    // -- Uninterpreted functions -----------------------------------------
    /// Application of the declared function `FuncId` to the argument list.
    ///
    /// TPot uses two UFs: `tpot_bv2int : (_ BitVec 64) -> Int` (the
    /// overflow-free bitvector→integer conversion of §4.3) and
    /// `heap_safe : Int -> Int` (the lazy-materialization safety map of
    /// §4.2).
    Apply(FuncId),
}

impl Kind {
    /// True for leaf kinds (no arguments).
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            Kind::True | Kind::False | Kind::BvConst(_) | Kind::IntConst(_) | Kind::Var(_)
        )
    }
}

/// A term node: kind, argument list, and sort.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Term {
    /// Operator or leaf kind.
    pub kind: Kind,
    /// Argument term ids (empty for leaves).
    pub args: Vec<TermId>,
    /// Sort of the term.
    pub sort: Sort,
}

impl Term {
    /// Bitvector constant value if this node is a `BvConst`.
    pub fn as_bv_const(&self) -> Option<(u32, u128)> {
        match (&self.kind, &self.sort) {
            (Kind::BvConst(v), Sort::BitVec(w)) => Some((*w, *v)),
            _ => None,
        }
    }

    /// Integer constant value if this node is an `IntConst`.
    pub fn as_int_const(&self) -> Option<i128> {
        match &self.kind {
            Kind::IntConst(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean constant value if this node is `True`/`False`.
    pub fn as_bool_const(&self) -> Option<bool> {
        match &self.kind {
            Kind::True => Some(true),
            Kind::False => Some(false),
            _ => None,
        }
    }

    /// True if the node is any constant leaf.
    pub fn is_const(&self) -> bool {
        matches!(
            self.kind,
            Kind::True | Kind::False | Kind::BvConst(_) | Kind::IntConst(_)
        )
    }
}
