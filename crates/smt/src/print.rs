//! SMT-LIB2 serialization.
//!
//! The paper's solver portfolio consumes serialized queries; serialization is
//! the "Serialization" bucket of Figure 7 (8–28% of verification time). This
//! module reproduces that cost structure: the engine serializes each query
//! before handing it to the portfolio, and the benchmark harness measures the
//! time spent here.

use std::collections::HashSet;
use std::fmt::Write;

use crate::arena::TermArena;
use crate::term::{Kind, TermId};

/// Serializes a complete `check-sat` script for the conjunction of
/// `assertions`, including all required `declare-fun`s.
pub fn to_smtlib(arena: &TermArena, assertions: &[TermId]) -> String {
    let mut out = String::new();
    out.push_str("(set-logic ALL)\n");
    let mut seen_vars: HashSet<u32> = HashSet::new();
    let mut seen_funcs: HashSet<u32> = HashSet::new();
    let mut visited: HashSet<TermId> = HashSet::new();
    for &t in assertions {
        collect_decls(arena, t, &mut seen_vars, &mut seen_funcs, &mut visited);
    }
    let mut vars: Vec<u32> = seen_vars.into_iter().collect();
    vars.sort_unstable();
    for sym in vars {
        let (name, sort) = &arena.vars()[sym as usize];
        let _ = writeln!(out, "(declare-const {} {sort})", sanitize(name));
    }
    let mut funcs: Vec<u32> = seen_funcs.into_iter().collect();
    funcs.sort_unstable();
    for fi in funcs {
        let d = &arena.funcs()[fi as usize];
        let _ = write!(out, "(declare-fun {} (", sanitize(&d.name));
        for (i, s) in d.args.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{s}");
        }
        let _ = writeln!(out, ") {})", d.ret);
    }
    for &t in assertions {
        out.push_str("(assert ");
        write_term(arena, t, &mut out);
        out.push_str(")\n");
    }
    out.push_str("(check-sat)\n");
    out
}

fn collect_decls(
    arena: &TermArena,
    t: TermId,
    vars: &mut HashSet<u32>,
    funcs: &mut HashSet<u32>,
    visited: &mut HashSet<TermId>,
) {
    if !visited.insert(t) {
        return;
    }
    let node = arena.term(t);
    match &node.kind {
        Kind::Var(sym) => {
            vars.insert(*sym);
        }
        Kind::Apply(f) => {
            funcs.insert(f.0);
        }
        _ => {}
    }
    for &a in &node.args {
        collect_decls(arena, a, vars, funcs, visited);
    }
}

fn sanitize(name: &str) -> String {
    if name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || "~!@$%^&*_-+=<>.?/".contains(c))
    {
        name.to_string()
    } else {
        format!("|{name}|")
    }
}

/// Writes a single term in SMT-LIB2 syntax.
pub fn write_term(arena: &TermArena, t: TermId, out: &mut String) {
    let node = arena.term(t);
    let op: &str = match &node.kind {
        Kind::True => {
            out.push_str("true");
            return;
        }
        Kind::False => {
            out.push_str("false");
            return;
        }
        Kind::BvConst(v) => {
            let w = node.sort.bv_width().unwrap();
            if w.is_multiple_of(4) {
                let _ = write!(out, "#x{v:0>width$x}", width = (w / 4) as usize);
            } else {
                let _ = write!(out, "(_ bv{v} {w})");
            }
            return;
        }
        Kind::IntConst(v) => {
            if *v < 0 {
                let _ = write!(out, "(- {})", v.unsigned_abs());
            } else {
                let _ = write!(out, "{v}");
            }
            return;
        }
        Kind::Var(_) => {
            out.push_str(&sanitize(arena.var_name(t)));
            return;
        }
        Kind::Not => "not",
        Kind::And => "and",
        Kind::Or => "or",
        Kind::Xor => "xor",
        Kind::Implies => "=>",
        Kind::Ite => "ite",
        Kind::Eq => "=",
        Kind::BvNeg => "bvneg",
        Kind::BvAdd => "bvadd",
        Kind::BvSub => "bvsub",
        Kind::BvMul => "bvmul",
        Kind::BvUDiv => "bvudiv",
        Kind::BvURem => "bvurem",
        Kind::BvAnd => "bvand",
        Kind::BvOr => "bvor",
        Kind::BvXor => "bvxor",
        Kind::BvNot => "bvnot",
        Kind::BvShl => "bvshl",
        Kind::BvLShr => "bvlshr",
        Kind::BvAShr => "bvashr",
        Kind::BvUlt => "bvult",
        Kind::BvUle => "bvule",
        Kind::BvSlt => "bvslt",
        Kind::BvSle => "bvsle",
        Kind::Concat => "concat",
        Kind::Extract { hi, lo } => {
            let _ = write!(out, "((_ extract {hi} {lo}) ");
            write_term(arena, node.args[0], out);
            out.push(')');
            return;
        }
        Kind::ZeroExt { extra } => {
            let _ = write!(out, "((_ zero_extend {extra}) ");
            write_term(arena, node.args[0], out);
            out.push(')');
            return;
        }
        Kind::SignExt { extra } => {
            let _ = write!(out, "((_ sign_extend {extra}) ");
            write_term(arena, node.args[0], out);
            out.push(')');
            return;
        }
        Kind::IntAdd => "+",
        Kind::IntSub => "-",
        Kind::IntMul => "*",
        Kind::IntNeg => "-",
        Kind::IntLe => "<=",
        Kind::IntLt => "<",
        Kind::Select => "select",
        Kind::Store => "store",
        Kind::Apply(f) => {
            let _ = write!(out, "({}", sanitize(&arena.func(*f).name));
            for &a in &node.args {
                out.push(' ');
                write_term(arena, a, out);
            }
            out.push(')');
            return;
        }
    };
    let _ = write!(out, "({op}");
    for &a in &node.args {
        out.push(' ');
        write_term(arena, a, out);
    }
    out.push(')');
}

/// Serializes a single term to a string (debugging helper).
pub fn term_to_string(arena: &TermArena, t: TermId) -> String {
    let mut s = String::new();
    write_term(arena, t, &mut s);
    s
}

/// A stable 64-bit hash of a serialized query, used to key the persistent
/// query cache (§4.4). FNV-1a over the SMT-LIB text: stable across runs and
/// processes, unlike `DefaultHasher`.
pub fn query_fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    #[test]
    fn serialize_simple_query() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::BitVec(8));
        let c = a.bv_const(8, 3);
        let e = a.bv_ult(x, c);
        let s = to_smtlib(&a, &[e]);
        assert!(s.contains("(declare-const x (_ BitVec 8))"));
        assert!(s.contains("(assert (bvult x #x03))"));
        assert!(s.contains("(check-sat)"));
    }

    #[test]
    fn serialize_uf_and_int() {
        let mut a = TermArena::new();
        let f = a.declare_func("tpot_bv2int", vec![Sort::BitVec(64)], Sort::Int);
        let p = a.var("p", Sort::BitVec(64));
        let ap = a.apply(f, vec![p]);
        let neg = a.int_const(-5);
        let e = a.int_le(neg, ap);
        let s = to_smtlib(&a, &[e]);
        assert!(s.contains("(declare-fun tpot_bv2int ((_ BitVec 64)) Int)"));
        assert!(s.contains("(<= (- 5) (tpot_bv2int p))"));
    }

    #[test]
    fn sanitize_odd_names() {
        let mut a = TermArena::new();
        let x = a.var("obj[3].field", Sort::Int);
        let zero = a.int_const(0);
        let e = a.int_lt(zero, x);
        let s = to_smtlib(&a, &[e]);
        assert!(s.contains("|obj[3].field|"));
    }

    #[test]
    fn fingerprint_stability() {
        let h1 = query_fingerprint("(check-sat)");
        let h2 = query_fingerprint("(check-sat)");
        assert_eq!(h1, h2);
        assert_ne!(h1, query_fingerprint("(check-sat) "));
    }

    #[test]
    fn odd_width_bv_prints_decimal() {
        let mut a = TermArena::new();
        let c = a.bv_const(3, 5);
        assert_eq!(term_to_string(&a, c), "(_ bv5 3)");
    }
}
