//! Append-only list with shared-tail structural sharing.

use std::sync::Arc;

/// An append-only list whose clones permanently share their common prefix.
///
/// Storage is a backwards-linked chain of *chunks*. A handle pushes into
/// its head chunk in place while it is the chunk's unique owner; the
/// moment the chunk is shared (another handle cloned the list, or the
/// chunk became some handle's frozen prefix), the next push starts a
/// fresh chunk instead. Elements recorded before a fork are therefore
/// never copied or moved again — forked execution paths extend their own
/// path condition, trace, or write log while physically sharing
/// everything from before the fork.
///
/// `clone` is O(1). `push` is amortized O(1). [`ShareList::tail_from`] and
/// iteration walk the chunk chain (O(chunks) + O(items yielded)).
pub struct ShareList<T> {
    head: Option<Arc<Chunk<T>>>,
    len: usize,
}

struct Chunk<T> {
    prev: Option<Arc<Chunk<T>>>,
    /// Index of `items[0]` in the whole list.
    start: usize,
    items: Vec<T>,
}

impl<T> ShareList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        ShareList { head: None, len: 0 }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element.
    ///
    /// A chunk is mutated in place only while this handle is its unique
    /// owner, so elements visible to any clone are immutable from the
    /// clone's point of view.
    pub fn push(&mut self, v: T) {
        if let Some(head) = self.head.as_mut() {
            if let Some(c) = Arc::get_mut(head) {
                c.items.push(v);
                self.len += 1;
                return;
            }
        }
        let prev = self.head.take();
        self.head = Some(Arc::new(Chunk {
            prev,
            start: self.len,
            items: vec![v],
        }));
        self.len += 1;
    }

    /// The chunks of this list, oldest first.
    fn chunks(&self) -> Vec<&Chunk<T>> {
        let mut out = Vec::new();
        let mut cur = self.head.as_deref();
        while let Some(c) = cur {
            out.push(c);
            cur = c.prev.as_deref();
        }
        out.reverse();
        debug_assert_eq!(
            self.len,
            out.last().map(|c| c.start + c.items.len()).unwrap_or(0),
            "chunk chain out of sync with len"
        );
        out
    }

    /// Iterates over the elements, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks().into_iter().flat_map(|c| c.items.iter())
    }

    /// The element at index `i`, or `None` out of bounds.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        let mut cur = self.head.as_deref();
        while let Some(c) = cur {
            if i >= c.start {
                return c.items.get(i - c.start);
            }
            cur = c.prev.as_deref();
        }
        None
    }

    /// The number of storage chunks (diagnostic; sharing assertions).
    pub fn chunk_count(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.as_deref();
        while let Some(c) = cur {
            n += 1;
            cur = c.prev.as_deref();
        }
        n
    }

    /// True if any storage chunk is physically shared between the two
    /// lists — i.e. they descend from a common fork and still share their
    /// prefix. Diagnostic helper for sharing assertions in tests.
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        let mut a = self.head.as_ref();
        while let Some(ca) = a {
            let mut b = other.head.as_ref();
            while let Some(cb) = b {
                if Arc::ptr_eq(ca, cb) {
                    return true;
                }
                b = cb.prev.as_ref();
            }
            a = ca.prev.as_ref();
        }
        false
    }
}

impl<T: Clone> ShareList<T> {
    /// Copies the whole list into a `Vec`, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for c in self.chunks() {
            out.extend(c.items.iter().cloned());
        }
        out
    }

    /// Copies the elements from index `from` (inclusive) to the end.
    /// Equivalent to `self.to_vec()[from..].to_vec()` without copying the
    /// shared prefix.
    pub fn tail_from(&self, from: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len.saturating_sub(from));
        for c in self.chunks() {
            if c.start + c.items.len() <= from {
                continue;
            }
            let lo = from.saturating_sub(c.start);
            out.extend(c.items[lo..].iter().cloned());
        }
        out
    }
}

impl<T> Clone for ShareList<T> {
    fn clone(&self) -> Self {
        ShareList {
            head: self.head.clone(),
            len: self.len,
        }
    }
}

impl<T> Default for ShareList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FromIterator<T> for ShareList<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let items: Vec<T> = iter.into_iter().collect();
        if items.is_empty() {
            return ShareList::new();
        }
        let len = items.len();
        ShareList {
            head: Some(Arc::new(Chunk {
                prev: None,
                start: 0,
                items,
            })),
            len,
        }
    }
}

impl<T> From<Vec<T>> for ShareList<T> {
    fn from(items: Vec<T>) -> Self {
        items.into_iter().collect()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ShareList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_get() {
        let mut l = ShareList::new();
        assert!(l.is_empty());
        for i in 0..100 {
            l.push(i);
        }
        assert_eq!(l.len(), 100);
        let v: Vec<i32> = l.iter().copied().collect();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
        assert_eq!(l.get(0), Some(&0));
        assert_eq!(l.get(99), Some(&99));
        assert_eq!(l.get(100), None);
        // All pushes while unique: one chunk.
        assert_eq!(l.chunk_count(), 1);
    }

    #[test]
    fn forks_share_prefix_and_diverge_independently() {
        let mut parent: ShareList<String> = ShareList::new();
        parent.push("a".into());
        parent.push("b".into());
        let mut child = parent.clone();
        // Divergent pushes land in private chunks.
        parent.push("p".into());
        child.push("c".into());
        assert_eq!(parent.to_vec(), vec!["a", "b", "p"]);
        assert_eq!(child.to_vec(), vec!["a", "b", "c"]);
        // The prefix chunk is physically shared, not copied.
        assert!(parent.shares_storage_with(&child));
        assert_eq!(parent.chunk_count(), 2);
        assert_eq!(child.chunk_count(), 2);
    }

    #[test]
    fn tail_from_spans_chunks() {
        let mut l = ShareList::new();
        l.push(0);
        l.push(1);
        let mut m = l.clone(); // freeze chunk 0
        for i in 2..6 {
            m.push(i);
        }
        let _ = &l;
        assert_eq!(m.tail_from(0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(m.tail_from(1), vec![1, 2, 3, 4, 5]);
        assert_eq!(m.tail_from(2), vec![2, 3, 4, 5]);
        assert_eq!(m.tail_from(5), vec![5]);
        assert_eq!(m.tail_from(6), Vec::<i32>::new());
        assert_eq!(m.tail_from(99), Vec::<i32>::new());
    }

    /// Model-based property test: random interleavings of push/clone over
    /// a family of handles always agree with plain `Vec` semantics.
    #[test]
    fn random_push_clone_matches_vec_model() {
        // Deterministic LCG; no external RNG crates in this workspace.
        let mut seed: u64 = 0x9e3779b97f4a7c15;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        let mut lists: Vec<ShareList<u64>> = vec![ShareList::new()];
        let mut models: Vec<Vec<u64>> = vec![Vec::new()];
        for step in 0..2000 {
            let i = rng() % lists.len();
            match rng() % 4 {
                // Push to a random handle (3x more likely than clone).
                0..=2 => {
                    lists[i].push(step as u64);
                    models[i].push(step as u64);
                }
                _ => {
                    if lists.len() < 16 {
                        lists.push(lists[i].clone());
                        models.push(models[i].clone());
                    } else {
                        // Replace one handle to also exercise drops.
                        let j = rng() % lists.len();
                        lists[j] = lists[i].clone();
                        models[j] = models[i].clone();
                    }
                }
            }
        }
        for (l, m) in lists.iter().zip(models.iter()) {
            assert_eq!(l.len(), m.len());
            assert_eq!(&l.to_vec(), m);
            let cut = if m.is_empty() { 0 } else { m.len() / 2 };
            assert_eq!(l.tail_from(cut), m[cut..].to_vec());
        }
    }
}
