//! Persistent vector with per-element copy-on-write.

use std::sync::Arc;

/// A persistent vector of `Arc`-boxed elements.
///
/// `clone` is O(1) (one atomic increment on the spine). Reads are O(1).
/// [`PVec::get_mut`] is the copy-on-write mutation path: it clones the
/// spine (a `Vec` of pointers — one atomic increment per element) the
/// first time a shared handle mutates, and deep-clones only the *one*
/// element being written if that element is still shared with another
/// handle. A fork that touches k of n elements therefore copies k
/// elements, not n.
pub struct PVec<T> {
    spine: Arc<Vec<Arc<T>>>,
}

impl<T> PVec<T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        PVec {
            spine: Arc::new(Vec::new()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.spine.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.spine.is_empty()
    }

    /// The element at `i`, or `None` out of bounds.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.spine.get(i).map(|a| &**a)
    }

    /// Iterates over the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.spine.iter().map(|a| &**a)
    }

    /// True if `self` and `other` share the same spine allocation (no
    /// element has been copied between them). Diagnostic helper for
    /// sharing assertions in tests.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.spine, &other.spine)
    }

    /// True if element `i` is physically shared with `other`'s element `i`.
    pub fn element_shared(&self, other: &Self, i: usize) -> bool {
        match (self.spine.get(i), other.spine.get(i)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl<T: Clone> PVec<T> {
    /// Appends an element.
    pub fn push(&mut self, v: T) {
        Arc::make_mut(&mut self.spine).push(Arc::new(v));
    }

    /// Mutable access to element `i`, copying it first if shared.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        let spine = Arc::make_mut(&mut self.spine);
        Arc::make_mut(&mut spine[i])
    }
}

impl<T> Clone for PVec<T> {
    fn clone(&self) -> Self {
        PVec {
            spine: Arc::clone(&self.spine),
        }
    }
}

impl<T> Default for PVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::ops::Index<usize> for PVec<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.spine[i]
    }
}

impl<'a, T> IntoIterator for &'a PVec<T> {
    type Item = &'a T;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, Arc<T>>, fn(&'a Arc<T>) -> &'a T>;
    fn into_iter(self) -> Self::IntoIter {
        self.spine.iter().map(|a| &**a)
    }
}

impl<T: Clone> FromIterator<T> for PVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        PVec {
            spine: Arc::new(iter.into_iter().map(Arc::new).collect()),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter() {
        let mut v = PVec::new();
        assert!(v.is_empty());
        v.push(10);
        v.push(20);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 10);
        assert_eq!(v.get(1), Some(&20));
        assert_eq!(v.get(2), None);
        let all: Vec<i32> = v.iter().copied().collect();
        assert_eq!(all, vec![10, 20]);
    }

    #[test]
    fn clone_shares_spine_until_mutation() {
        let mut a = PVec::new();
        for i in 0..10 {
            a.push(i);
        }
        let b = a.clone();
        assert!(a.ptr_eq(&b), "clone must share the spine");
        // Mutating one element splits the spine but copies only that
        // element; all others remain physically shared.
        *a.get_mut(3) = 99;
        assert!(!a.ptr_eq(&b));
        assert_eq!(a[3], 99);
        assert_eq!(b[3], 3, "clone unaffected");
        for i in 0..10 {
            if i != 3 {
                assert!(a.element_shared(&b, i), "element {i} must stay shared");
            }
        }
        assert!(!a.element_shared(&b, 3));
    }

    #[test]
    fn push_after_clone_does_not_leak() {
        let mut a: PVec<String> = PVec::new();
        a.push("x".into());
        let mut b = a.clone();
        b.push("y".into());
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert!(a.element_shared(&b, 0));
    }
}
