//! Arc-based persistent containers for copy-on-write execution states.
//!
//! The symbolic executor forks a state at every feasible branch, pointer
//! resolution candidate, and error check. A deep `Clone` of the state
//! (every memory object, every cache entry, every trace line) makes each
//! fork O(state size); persistent, structurally shared containers make it
//! O(1) pointer bumps instead, paying only for what a path actually
//! *mutates* after the fork:
//!
//! - [`PVec`]: a persistent vector of `Arc`-boxed elements. `clone` is one
//!   atomic increment; [`PVec::get_mut`] copies *one* element (plus, at
//!   most once per fork, the spine of pointers).
//! - [`CowMap`] / [`CowSet`]: copy-on-write hash map/set behind one `Arc`.
//!   `clone` is one atomic increment; the first insert after a fork copies
//!   the table once, later inserts are ordinary hash-map inserts.
//! - [`ShareList`]: an append-only list whose clones share their common
//!   prefix chunks forever. Pushing never copies inherited elements, so a
//!   forked path extends its own path condition / trace / write log while
//!   physically sharing everything recorded before the fork.
//!
//! All three are single-threaded value types (no locks); `Arc` is used for
//! its cheap shared ownership and `make_mut` COW semantics, and keeps the
//! containers `Send + Sync` so forked states can move across driver
//! threads.

mod cow;
mod list;
mod pvec;

pub use cow::{CowMap, CowSet};
pub use list::ShareList;
pub use pvec::PVec;
