//! Copy-on-write hash map and set.

use std::borrow::Borrow;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

/// A hash map behind one `Arc`: `clone` is O(1); the first mutation after
/// a clone copies the whole table once (`Arc::make_mut`), after which
/// mutations are ordinary hash-map operations.
///
/// Backs the engine's per-path proof/hint caches (read-after-write proofs,
/// constant offsets, resolution hints): forks inherit the parent's cache
/// for free and pay only when they *learn* something new on their own
/// path.
pub struct CowMap<K, V> {
    table: Arc<HashMap<K, V>>,
}

impl<K, V> CowMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        CowMap {
            table: Arc::new(HashMap::new()),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// True if `self` and `other` share the same table allocation.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.table, &other.table)
    }
}

impl<K: Eq + Hash, V> CowMap<K, V> {
    /// Looks up a key.
    pub fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.table.get(k)
    }

    /// True if the key is present.
    pub fn contains_key<Q>(&self, k: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.table.contains_key(k)
    }

    /// Iterates over `(key, value)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.table.iter()
    }

    /// Iterates over the values (arbitrary order).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.table.values()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> CowMap<K, V> {
    /// Inserts a key/value pair, copying the table first if shared.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        Arc::make_mut(&mut self.table).insert(k, v)
    }

    /// Removes every entry. Cheap when the table was shared (drops the
    /// reference instead of copying).
    pub fn clear(&mut self) {
        if self.table.is_empty() {
            return;
        }
        self.table = Arc::new(HashMap::new());
    }
}

impl<K, V> Clone for CowMap<K, V> {
    fn clone(&self) -> Self {
        CowMap {
            table: Arc::clone(&self.table),
        }
    }
}

impl<K, V> Default for CowMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for CowMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.table.iter()).finish()
    }
}

/// A hash set behind one `Arc`, with the same copy-on-write behavior as
/// [`CowMap`].
pub struct CowSet<T> {
    table: Arc<HashSet<T>>,
}

impl<T> CowSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        CowSet {
            table: Arc::new(HashSet::new()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// True if `self` and `other` share the same table allocation.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.table, &other.table)
    }
}

impl<T: Eq + Hash> CowSet<T> {
    /// True if the value is present.
    pub fn contains(&self, v: &T) -> bool {
        self.table.contains(v)
    }
}

impl<T: Eq + Hash + Clone> CowSet<T> {
    /// Inserts a value, copying the table first if shared. Returns true if
    /// the value was newly inserted.
    pub fn insert(&mut self, v: T) -> bool {
        Arc::make_mut(&mut self.table).insert(v)
    }
}

impl<T> Clone for CowSet<T> {
    fn clone(&self) -> Self {
        CowSet {
            table: Arc::clone(&self.table),
        }
    }
}

impl<T> Default for CowSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CowSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.table.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_cow_isolation() {
        let mut a = CowMap::new();
        a.insert("k", 1);
        let mut b = a.clone();
        assert!(a.ptr_eq(&b));
        b.insert("k2", 2);
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(a.get(&"k2"), None, "parent must not see child insert");
        assert_eq!(b.get(&"k"), Some(&1), "child inherits parent entries");
    }

    #[test]
    fn map_clear_does_not_touch_sibling() {
        let mut a = CowMap::new();
        a.insert(1u32, 1u32);
        let mut b = a.clone();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn set_cow_isolation() {
        let mut a = CowSet::new();
        assert!(a.insert(7));
        assert!(!a.insert(7));
        let mut b = a.clone();
        assert!(b.insert(8));
        assert!(a.contains(&7) && !a.contains(&8));
        assert!(b.contains(&7) && b.contains(&8));
    }
}
