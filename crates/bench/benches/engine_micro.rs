//! Criterion benchmarks over full POT verification runs (the unit of the
//! paper's Table 5).

use criterion::{criterion_group, criterion_main, Criterion};
use tpot_engine::Verifier;

const FIG1: &str = r#"
int a, b;
void increment(int *p) { *p = *p + 1; }
void decrement(int *p) { *p = *p - 1; }
void transfer(void) { increment(&a); decrement(&b); }
int get_sum(void) { return a + b; }
int inv__sum_zero(void) { return a + b == 0; }
void spec__transfer(void) {
  int old_a = a, old_b = b;
  transfer();
  assert(a == old_a + 1);
  assert(b == old_b - 1);
}
"#;

const FIG5: &str = r#"
int *p1, *p2;
void incr_p1(void) { *p1 = *p1 + 1; }
int inv__alloc(void) { return names_obj(p1, int) && names_obj(p2, int); }
void spec__incr_p1(void) {
  int old_p1 = *p1;
  int old_p2 = *p2;
  incr_p1();
  assert(*p1 == old_p1 + 1);
  assert(*p2 == old_p2);
}
"#;

fn bench_pot(c: &mut Criterion, name: &str, src: &str, pot: &str) {
    let module = tpot_ir::lower(&tpot_cfront::compile(src).unwrap()).unwrap();
    c.bench_function(name, |b| {
        b.iter(|| {
            let v = Verifier::new(module.clone());
            let r = v.verify_pot(pot);
            assert!(r.status.is_proved(), "{:?}", r.status);
        })
    });
}

fn engine(c: &mut Criterion) {
    bench_pot(c, "engine/fig1-transfer", FIG1, "spec__transfer");
    bench_pot(c, "engine/fig5-naming", FIG5, "spec__incr_p1");
}

fn frontend(c: &mut Criterion) {
    let t = tpot_targets::target("komodo-s").unwrap();
    let src = t.full_source();
    c.bench_function("frontend/compile-komodo", |b| {
        b.iter(|| {
            let checked = tpot_cfront::compile(&src).unwrap();
            let m = tpot_ir::lower(&checked).unwrap();
            assert!(m.num_insts() > 100);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine, frontend
}
criterion_main!(benches);
