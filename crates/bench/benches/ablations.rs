//! Criterion version of the §4.3 encoding ablation: integer vs naive
//! bitvector pointer resolution on the Fig. 5 naming workload. The paper's
//! claim — integer encoding avoids bit-blasting-driven blow-up — shows as a
//! consistent gap here; the `ablations` *binary* prints the full matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use tpot_engine::{AddrMode, EngineConfig, Verifier};

const FIG5: &str = r#"
int *p1, *p2;
void incr_p1(void) { *p1 = *p1 + 1; }
int inv__alloc(void) { return names_obj(p1, int) && names_obj(p2, int); }
void spec__incr_p1(void) {
  int old_p1 = *p1;
  int old_p2 = *p2;
  incr_p1();
  assert(*p1 == old_p1 + 1);
  assert(*p2 == old_p2);
}
"#;

fn encoding(c: &mut Criterion) {
    let module = tpot_ir::lower(&tpot_cfront::compile(FIG5).unwrap()).unwrap();
    for (name, mode) in [
        ("ablation/ptr-encoding-int", AddrMode::Int),
        ("ablation/ptr-encoding-bv", AddrMode::Bv),
    ] {
        let m = module.clone();
        c.bench_function(name, |b| {
            b.iter(|| {
                let cfg = EngineConfig {
                    addr_mode: mode,
                    ..EngineConfig::default()
                };
                let v = Verifier::with_config(m.clone(), cfg);
                let r = v.verify_pot("spec__incr_p1");
                assert!(r.status.is_proved());
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = encoding
}
criterion_main!(benches);
