//! Criterion micro-benchmarks for the solver substrates (SAT, simplex,
//! bit-blasting, full SMT) — the building blocks whose costs Fig. 7
//! aggregates.

use criterion::{criterion_group, criterion_main, Criterion};
use tpot_sat::{Lit, SatResult, Solver, Var};
use tpot_smt::{Sort, TermArena};
use tpot_solver::SmtSolver;

fn sat_pigeonhole(c: &mut Criterion) {
    c.bench_function("sat/php(6,5)-unsat", |b| {
        b.iter(|| {
            let (n, m) = (6u32, 5u32);
            let mut s = Solver::default();
            for _ in 0..(n * m) {
                s.new_var();
            }
            let p = |i: u32, j: u32| Lit::pos(Var(i * m + j));
            for i in 0..n {
                let cl: Vec<Lit> = (0..m).map(|j| p(i, j)).collect();
                s.add_clause(&cl);
            }
            for j in 0..m {
                for i1 in 0..n {
                    for i2 in (i1 + 1)..n {
                        s.add_clause(&[p(i1, j).negate(), p(i2, j).negate()]);
                    }
                }
            }
            assert_eq!(s.solve(&[]), SatResult::Unsat);
        })
    });
}

fn smt_pointer_resolution_query(c: &mut Criterion) {
    // The §4.3 integer-encoded pointer-resolution query shape.
    c.bench_function("smt/pointer-resolution-int", |b| {
        b.iter(|| {
            let mut a = TermArena::new();
            let b2i = a.declare_func("tpot_bv2int", vec![Sort::BitVec(64)], Sort::Int);
            let base1 = a.var("base1", Sort::BitVec(64));
            let base2 = a.var("base2", Sort::BitVec(64));
            let p = a.var("p", Sort::BitVec(64));
            let ib1 = a.apply(b2i, vec![base1]);
            let ib2 = a.apply(b2i, vec![base2]);
            let ip = a.apply(b2i, vec![p]);
            let c4096 = a.int_const(4096);
            let end1 = a.int_add2(ib1, c4096);
            let layout = a.int_le(end1, ib2);
            let lo = a.int_le(ib1, ip);
            let hi = a.int_lt(ip, end1);
            let alias = a.eq(ip, ib2);
            let r = SmtSolver::default()
                .check(&mut a, &[layout, lo, hi, alias])
                .unwrap();
            assert!(r.is_unsat());
        })
    });
}

fn smt_bitblast_addition(c: &mut Criterion) {
    // 64-bit commutativity: a pure bit-blasting workload.
    c.bench_function("smt/bitblast-add-commute-64", |b| {
        b.iter(|| {
            let mut a = TermArena::new();
            let x = a.var("x", Sort::BitVec(64));
            let y = a.var("y", Sort::BitVec(64));
            let s1 = a.bv_add(x, y);
            let s2 = a.bv_add(y, x);
            let ne = a.neq(s1, s2);
            let r = SmtSolver::default().check(&mut a, &[ne]).unwrap();
            assert!(r.is_unsat());
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sat_pigeonhole, smt_pointer_resolution_query, smt_bitblast_addition
}
criterion_main!(benches);
