//! Fork-cost microbenchmarks: copy-on-write [`State::fork`] against what
//! the pre-refactor representation's `Clone` had to copy (every memory
//! object, path term, trace line and cache entry, by value), at growing
//! object counts. The COW fork's cost is O(frames) and flat in the object
//! count; the deep clone grows linearly.

use std::collections::HashMap;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tpot_engine::state::{Frame, RetCont, State};
use tpot_mem::{AddrMode, MemObject, Memory};
use tpot_smt::{Sort, TermArena, TermId};

fn build_state(arena: &mut TermArena, n: usize) -> State {
    let mut mem = Memory::new(arena, AddrMode::Int);
    for i in 0..n {
        mem.alloc_global(arena, &format!("g{i}"), 8);
    }
    let mut s = State::new(mem);
    for i in 0..n {
        let c = arena.var(&format!("p{i}"), Sort::Bool);
        s.assume(c);
        s.trace_step(format!("bb{i}"));
        let k1 = arena.var(&format!("a{i}"), Sort::Bool);
        let k2 = arena.var(&format!("b{i}"), Sort::Bool);
        s.raw_proofs.insert((k1, k2), i % 2 == 0);
    }
    s.frames.push(Frame {
        func: 0,
        block: 0,
        ip: 0,
        regs: vec![None; 16],
        local_objs: vec![],
        ret_reg: None,
        on_return: RetCont::Normal,
        pending: Default::default(),
        loops: Default::default(),
        prev_naming: None,
    });
    s
}

type DeepPayload = (
    Vec<MemObject>,
    Vec<TermId>,
    Vec<String>,
    HashMap<(TermId, TermId), bool>,
    Vec<Frame>,
);

/// Materializes owned copies of everything the old `Vec`/`HashMap`-backed
/// `State` deep-copied on every fork.
fn deep_clone_payload(s: &State) -> DeepPayload {
    (
        s.mem.objects.iter().cloned().collect(),
        s.path.to_vec(),
        s.trace.to_vec(),
        s.raw_proofs.iter().map(|(k, v)| (*k, *v)).collect(),
        s.frames.clone(),
    )
}

fn fork(c: &mut Criterion) {
    for n in [10usize, 100, 1000] {
        let mut arena = TermArena::new();
        let s = build_state(&mut arena, n);
        c.bench_function(&format!("fork/cow/{n}-objects"), |b| {
            b.iter(|| black_box(s.fork()))
        });
        c.bench_function(&format!("fork/deep/{n}-objects"), |b| {
            b.iter(|| black_box(deep_clone_payload(&s)))
        });
    }
}

/// Median nanoseconds per call, batching `BATCH` calls per sample so the
/// sub-microsecond COW fork stays above timer resolution.
fn median_ns<F: FnMut()>(mut f: F) -> f64 {
    const BATCH: usize = 16;
    const SAMPLES: usize = 61;
    f();
    let mut v = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        v.push(t0.elapsed().as_nanos() as f64 / BATCH as f64);
    }
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn speedup(_c: &mut Criterion) {
    for n in [10usize, 100, 1000] {
        let mut arena = TermArena::new();
        let s = build_state(&mut arena, n);
        let cow = median_ns(|| {
            black_box(s.fork());
        });
        let deep = median_ns(|| {
            black_box(deep_clone_payload(&s));
        });
        println!(
            "fork/speedup/{n}-objects                      {:.1}x (deep {:.0} ns vs cow {:.0} ns)",
            deep / cow.max(1.0),
            deep,
            cow
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = fork, speedup
}
criterion_main!(benches);
