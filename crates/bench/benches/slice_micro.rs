//! Micro-benchmark for cone-of-influence slicing: what the portfolio now
//! ships per racing instance (`TermArena::slice`) versus what it used to
//! ship (`TermArena::clone`), on arenas shaped like a late-POT engine arena
//! — large, with only a small cone relevant to the current query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tpot_smt::{Sort, TermArena, TermId};

/// Builds an arena with `junk` dead chains plus a small live assertion cone,
/// mimicking the engine's monotonically growing arena late in a POT run.
fn grown_arena(junk: usize) -> (TermArena, Vec<TermId>) {
    let mut a = TermArena::new();
    for i in 0..junk {
        let v = a.var(&format!("dead{i}"), Sort::BitVec(64));
        let c = a.bv_const(64, i as u128);
        let s = a.bv_add(v, c);
        let c2 = a.bv_const(64, 7);
        let m = a.bv_mul(s, c2);
        a.eq(m, c);
    }
    let x = a.var("x", Sort::BitVec(64));
    let y = a.var("y", Sort::BitVec(64));
    let sum = a.bv_add(x, y);
    let bound = a.bv_const(64, 4096);
    let q = a.bv_ult(sum, bound);
    (a, vec![q])
}

fn slicing(c: &mut Criterion) {
    for junk in [1_000usize, 10_000] {
        let (arena, roots) = grown_arena(junk);
        c.bench_function(&format!("slice/cone-of-{}-terms", arena.len()), |b| {
            b.iter(|| {
                let (sliced, new_roots) = arena.slice(black_box(&roots));
                black_box((sliced.len(), new_roots))
            })
        });
        c.bench_function(&format!("clone/full-{}-terms", arena.len()), |b| {
            b.iter(|| {
                let full = black_box(&arena).clone();
                black_box(full.len())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = slicing
}
criterion_main!(benches);
