//! Table 4: annotation overhead.
//!
//! Measures the TPot annotation lines of every embedded target by category
//! and prints them next to the paper's published numbers for the four
//! baseline verifiers and for TPot itself.

use tpot_targets::all_targets;
use tpot_targets::annot::{count_annotations, PAPER_BASELINES, PAPER_TPOT};

fn main() {
    println!("Table 4: annotation overhead (lines), reproduction vs paper");
    println!(
        "{:<22} {:>5} {:>6} {:>5} {:>5} {:>5} {:>6} {:>6} | {:>7} {:>7} | {:>9} {:>9}",
        "Target",
        "Spec",
        "Intern",
        "Pred",
        "Proof",
        "Loops",
        "Global",
        "Linux",
        "SynTot",
        "SemTot",
        "Syn-ovhd",
        "Sem-ovhd"
    );
    println!("{:-<125}", "");
    for t in all_targets() {
        let c = count_annotations(&t);
        println!(
            "{:<22} {:>5} {:>6} {:>5} {:>5} {:>5} {:>6} {:>6} | {:>7} {:>7} | {:>8.0}% {:>8.0}%",
            t.name,
            c.specifications,
            c.internal,
            c.predicates,
            c.proof,
            c.loops,
            c.globals,
            c.linux_models,
            c.syntactic_total,
            c.semantic_total,
            c.syntactic_overhead(),
            c.semantic_overhead()
        );
    }
    println!();
    println!("Paper-reported totals for the baseline verifiers (cannot be rerun here):");
    for (t, v, syn, sem, loc) in PAPER_BASELINES {
        println!(
            "  {t:<22} {v:<9} syntactic {syn:>4}  semantic {sem:>4}  overhead {:>3.0}%/{:>3.0}%",
            100.0 * *syn as f64 / *loc as f64,
            100.0 * *sem as f64 / *loc as f64
        );
    }
    println!();
    println!("Paper-reported TPot totals (for shape comparison):");
    for (t, syn, sem) in PAPER_TPOT {
        println!("  {t:<22} syntactic {syn:>4}  semantic {sem:>4}");
    }
    println!();
    println!("Key shape: TPot's Internal / Predicates / Proof rows are zero on every");
    println!("target (component-level inlining, §4.1), which is where the baselines'");
    println!("overhead concentrates (e.g. USB driver VeriFast: 409 internal lines).");
}
