//! Quick verification run of the pKVM early-allocator target.

use tpot_engine::{PotStatus, Verifier};

fn main() {
    let imp = std::fs::read_to_string("targets/pkvm_early_alloc/early_alloc.c").unwrap();
    let spec = std::fs::read_to_string("targets/pkvm_early_alloc/spec.c").unwrap();
    let src = format!("{imp}\n{spec}");
    let m = tpot_ir::lower(&tpot_cfront::compile(&src).unwrap()).unwrap();
    let v = Verifier::new(m);
    let only: Vec<String> = std::env::args().skip(1).collect();
    for pot in v.module.pot_names() {
        if !only.is_empty() && !only.contains(&pot) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let r = v.verify_pot(&pot);
        let status = match &r.status {
            PotStatus::Proved => "PROVED".to_string(),
            PotStatus::Failed(vs) => format!("FAILED: {}", vs[0]),
            PotStatus::Error(e) => format!("ERROR: {e}"),
        };
        println!(
            "{pot}: {status} in {:?} ({} queries, {} paths, {} insts)",
            t0.elapsed(),
            r.stats.num_queries,
            r.stats.paths,
            r.stats.insts
        );
    }
}
