//! The bench observatory CLI.
//!
//! ```text
//! tpot-bench diff OLD.json NEW.json [--threshold PCT] [--floor-ms MS]
//!                                   [--json-out PATH]
//! tpot-bench history [FILES...]
//! ```
//!
//! `diff` compares two `tpot-bench/v1` reports and exits nonzero when the
//! new one regresses (a POT outcome changed, or a `_ms`/`_us` timing grew
//! past the noise thresholds — see `tpot_bench::diff`). CI runs it
//! against the previous PR's committed report.
//!
//! `history` prints the outcome/wall trajectory over a list of committed
//! reports (default: `BENCH_PR*.json` in the current directory, in PR
//! order).

use std::process::ExitCode;

use tpot_bench::diff::{diff_reports, history_row, render_history, DiffConfig};
use tpot_obs::json::{parse, Value};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tpot-bench diff OLD.json NEW.json [--threshold PCT] [--floor-ms MS] \
         [--json-out PATH]\n       tpot-bench history [FILES...]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: bad JSON: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diff") => cmd_diff(&args[1..]),
        Some("history") => cmd_history(&args[1..]),
        _ => usage(),
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) => {
                    cfg.time_threshold = pct / 100.0;
                    cfg.counter_threshold = pct / 100.0;
                }
                None => return usage(),
            },
            "--floor-ms" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(ms) => cfg.time_floor_ms = ms,
                None => return usage(),
            },
            "--json-out" => match it.next() {
                Some(p) => json_out = Some(p.clone()),
                None => return usage(),
            },
            _ => files.push(a.clone()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return usage();
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("tpot-bench diff: {e}");
            return ExitCode::from(2);
        }
    };
    let rep = diff_reports(&old, &new, &cfg);
    print!("diff {old_path} -> {new_path}\n{}", rep.render());
    if let Some(p) = json_out {
        if let Err(e) = std::fs::write(&p, rep.render_json() + "\n") {
            eprintln!("tpot-bench diff: writing {p}: {e}");
            return ExitCode::from(2);
        }
    }
    if rep.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_history(args: &[String]) -> ExitCode {
    let files: Vec<String> = if args.is_empty() {
        committed_reports()
    } else {
        args.to_vec()
    };
    if files.is_empty() {
        eprintln!("tpot-bench history: no BENCH_PR*.json reports found");
        return ExitCode::from(2);
    }
    let mut rows = Vec::new();
    for f in &files {
        match load(f) {
            Ok(doc) => rows.push(history_row(f, &doc)),
            Err(e) => eprintln!("tpot-bench history: skipping {e}"),
        }
    }
    print!("{}", render_history(&rows));
    ExitCode::SUCCESS
}

/// `BENCH_PR*.json` in the current directory, sorted by PR number.
fn committed_reports() -> Vec<String> {
    let mut found: Vec<(u64, String)> = Vec::new();
    if let Ok(rd) = std::fs::read_dir(".") {
        for entry in rd.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(n) = name
                .strip_prefix("BENCH_PR")
                .and_then(|r| r.strip_suffix(".json"))
                .and_then(|d| d.parse::<u64>().ok())
            {
                found.push((n, name));
            }
        }
    }
    found.sort();
    found.into_iter().map(|(_, n)| n).collect()
}
