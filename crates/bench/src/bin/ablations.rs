//! Ablations of TPot's design choices (§4.3), on the pKVM nr_pages POT and
//! the Fig. 5 naming example:
//!
//! 1. integer vs naive-bitvector pointer encoding,
//! 2. solver-aided query simplifier on vs off,
//! 3. single solver vs racing portfolio,
//! 4. persistent query cache cold vs warm.

use std::time::Instant;

use tpot_bench::fmt_dur;
use tpot_engine::{AddrMode, EngineConfig, Verifier};

fn fig5_module() -> tpot_ir::Module {
    let src = r#"
int *p1, *p2;
void incr_p1(void) { *p1 = *p1 + 1; }
int inv__alloc(void) { return names_obj(p1, int) && names_obj(p2, int); }
void spec__incr_p1(void) {
  int old_p1 = *p1;
  int old_p2 = *p2;
  incr_p1();
  assert(*p1 == old_p1 + 1);
  assert(*p2 == old_p2);
}
"#;
    tpot_ir::lower(&tpot_cfront::compile(src).unwrap()).unwrap()
}

fn run(m: &tpot_ir::Module, cfg: EngineConfig, pot: &str) -> (bool, std::time::Duration, u64) {
    let v = Verifier::with_config(m.clone(), cfg);
    let t0 = Instant::now();
    let r = v.verify_pot(pot);
    (r.status.is_proved(), t0.elapsed(), r.stats.num_queries)
}

fn main() {
    let m = fig5_module();
    println!("Ablation 1: pointer encoding (Fig. 5 naming example, spec__incr_p1)");
    for (name, mode) in [
        ("integer (paper)", AddrMode::Int),
        ("naive bitvector", AddrMode::Bv),
    ] {
        let cfg = EngineConfig {
            addr_mode: mode,
            ..EngineConfig::default()
        };
        let (ok, d, q) = run(&m, cfg, "spec__incr_p1");
        println!("  {name:<18} proved={ok}  time={}  queries={q}", fmt_dur(d));
    }
    println!();
    println!("Ablation 2: solver-aided query simplifier (§4.3)");
    for (name, simp) in [("simplifier on", true), ("simplifier off", false)] {
        let cfg = EngineConfig {
            simplifier: simp,
            ..EngineConfig::default()
        };
        let (ok, d, q) = run(&m, cfg, "spec__incr_p1");
        println!("  {name:<18} proved={ok}  time={}  queries={q}", fmt_dur(d));
    }
    println!();
    println!("Ablation 3: solver portfolio size (§4.4)");
    for n in [1usize, 4] {
        let cfg = EngineConfig {
            portfolio_size: n,
            ..EngineConfig::default()
        };
        let (ok, d, q) = run(&m, cfg, "spec__incr_p1");
        println!(
            "  {n} instance(s)      proved={ok}  time={}  queries={q}",
            fmt_dur(d)
        );
    }
    println!();
    println!("Ablation 4: persistent query cache (§4.4) — cold vs warm CI run");
    let cache = std::env::temp_dir().join("tpot-ablation-cache.json");
    let _ = std::fs::remove_file(&cache);
    for label in ["cold", "warm"] {
        let cfg = EngineConfig {
            cache_path: Some(cache.clone()),
            ..EngineConfig::default()
        };
        let (ok, d, q) = run(&m, cfg, "spec__incr_p1");
        println!(
            "  {label:<6} cache       proved={ok}  time={}  queries={q}",
            fmt_dur(d)
        );
    }
    let _ = std::fs::remove_file(&cache);
}
