//! Figure 7: breakdown of verification time into the paper's buckets —
//! Query simplification, SMT:pointers, SMT:branches, Serialization, Other.
//!
//! Usage: `fig7 [target-fragment ...]` (default: the three small targets).

use tpot_targets::all_targets;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let select: Vec<String> = if args.is_empty() {
        vec!["pkvm".into(), "vigor".into(), "page table".into()]
    } else if args.iter().any(|a| a == "all") {
        all_targets()
            .iter()
            .map(|t| t.name.to_lowercase())
            .collect()
    } else {
        args
    };
    println!(
        "{:<22} {:>11} {:>12} {:>12} {:>13} {:>7}",
        "Target", "QuerySimpl%", "SMT:ptrs%", "SMT:branch%", "Serialization%", "Other%"
    );
    println!("{:-<84}", "");
    for t in all_targets() {
        if !select
            .iter()
            .any(|s| t.name.to_lowercase().contains(&s.to_lowercase()))
        {
            continue;
        }
        let v = t.verifier().expect("target compiles");
        let mut agg = tpot_engine::Stats::default();
        for pot in v.module.pot_names() {
            let r = v.verify_pot(&pot);
            agg.merge(&r.stats);
        }
        let (simp, ptr, br, ser, other) = agg.fig7_breakdown();
        println!(
            "{:<22} {:>11.1} {:>12.1} {:>12.1} {:>13.1} {:>7.1}",
            t.name, simp, ptr, br, ser, other
        );
        // Pipeline counters behind the Serialization bucket: queries per
        // purpose, one serialization per query, and the slicing savings
        // (terms shipped to solver instances vs the full arena).
        println!(
            "{:<22}   queries {} (ptr {}, branch {}, assert {}, simplify {}), \
serializations {}, sliced {}/{} terms, queue wait {:.1} ms",
            "",
            agg.num_queries,
            agg.pointer_queries,
            agg.branch_queries,
            agg.assertion_queries,
            agg.simplify_queries,
            agg.num_serializations,
            agg.terms_shipped,
            agg.terms_total,
            agg.queue_wait.as_secs_f64() * 1e3
        );
    }
    println!();
    println!("Paper shape (Fig. 7): solver work dominates (53-80% across SMT buckets),");
    println!("serialization is a visible 8-28% slice, simplification a minor one.");
}
