//! Generic target verification harness: `target_smoke <dir> [pot...]`.

use tpot_engine::{PotStatus, Verifier};

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = args
        .next()
        .expect("usage: target_smoke <targets/dir> [pot...]");
    let only: Vec<String> = args.collect();
    let mut src = String::new();
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy().to_string();
            // Contract files belong to the modular baseline verifier
            // (see `baseline_compare`), not to TPot runs.
            p.extension().map(|e| e == "c").unwrap_or(false) && !name.contains("contract")
        })
        .collect();
    files.sort_by_key(|p| {
        // Models first, spec last.
        let n = p.file_name().unwrap().to_string_lossy().to_string();
        (n.contains("spec"), n)
    });
    for f in &files {
        src.push_str(&std::fs::read_to_string(f).unwrap());
        src.push('\n');
    }
    let m = tpot_ir::lower(&tpot_cfront::compile(&src).unwrap_or_else(|e| panic!("{e}"))).unwrap();
    let v = Verifier::new(m);
    for pot in v.module.pot_names() {
        if !only.is_empty() && !only.contains(&pot) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let r = v.verify_pot(&pot);
        let status = match &r.status {
            PotStatus::Proved => "PROVED".to_string(),
            PotStatus::Failed(vs) => format!("FAILED: {}", vs[0]),
            PotStatus::Error(e) => format!("ERROR: {e}"),
        };
        println!(
            "{pot}: {status} in {:?} ({} q, {} paths)",
            t0.elapsed(),
            r.stats.num_queries,
            r.stats.paths
        );
    }
}
