//! Live modular-verifier comparison (the Table 4 / §5.2 contrast).
//!
//! Verifies the Vigor allocator twice: with TPot (no internal contracts)
//! and with the modular baseline (VeriFast-style contracts on every
//! function), then prints annotation counts and verification times
//! side by side.

use tpot_baseline::ModularVerifier;
use tpot_bench::fmt_dur;
use tpot_engine::PotStatus;
use tpot_targets::{annot::count_annotations, loc::count_loc, target};

fn main() {
    let t = target("vigor").unwrap();

    println!("== TPot (component-level, inlining, no internal contracts) ==");
    let v = t.verifier().unwrap();
    let mut tpot_ok = 0;
    let mut tpot_time = std::time::Duration::ZERO;
    for pot in v.module.pot_names() {
        let r = v.verify_pot(&pot);
        tpot_time += r.duration;
        let ok = r.status.is_proved();
        tpot_ok += ok as u32;
        println!(
            "  {pot}: {} in {}",
            if ok { "proved" } else { "FAILED" },
            fmt_dur(r.duration)
        );
    }
    let c = count_annotations(&t);
    println!(
        "  annotations: {} lines total ({} spec, {} globals, {} loops, 0 internal)",
        c.syntactic_total, c.specifications, c.globals, c.loops
    );

    println!();
    println!("== Modular baseline (function contracts, VeriFast-style) ==");
    let contracts = std::fs::read_to_string("targets/vigor_alloc/baseline_contracts.c")
        .expect("run from the repository root");
    let src = format!("{}\n{}", t.impl_src, contracts);
    let m = tpot_ir::lower(&tpot_cfront::compile(&src).unwrap()).unwrap();
    let mv = ModularVerifier::new(m).unwrap();
    let mut base_time = std::time::Duration::ZERO;
    for f in mv.contracted_functions() {
        let r = mv.verify_function(&f);
        base_time += r.duration;
        let status = match &r.status {
            PotStatus::Proved => "proved".to_string(),
            PotStatus::Failed(vs) => format!("FAILED ({})", vs[0].kind),
            PotStatus::Error(e) => format!("error: {e}"),
        };
        println!("  {f}: {status} in {}", fmt_dur(r.duration));
    }
    let contract_lines = count_loc(&contracts);
    println!("  contract annotations: {contract_lines} lines (every function needs one)");

    println!();
    println!("== Contrast (the paper's Table 4 / Table 5 trade) ==");
    println!(
        "  TPot: {} POTs proved, {} annotation lines, total verify {}",
        tpot_ok,
        c.syntactic_total,
        fmt_dur(tpot_time)
    );
    println!(
        "  Baseline: per-function contracts ({contract_lines} lines incl. internals), total verify {}",
        fmt_dur(base_time)
    );
    println!("  Shape: the baseline verifies faster per query but demands contracts on");
    println!("  internal functions; TPot shifts that effort to the solver (§2.3).");
}
