//! Quick verification run of the KVM page-table target.

use tpot_engine::{PotStatus, Verifier};

fn main() {
    let imp = std::fs::read_to_string("targets/kvm_pgtable/pgtable.c").unwrap();
    let spec = std::fs::read_to_string("targets/kvm_pgtable/spec.c").unwrap();
    let src = format!("{imp}\n{spec}");
    let m = tpot_ir::lower(&tpot_cfront::compile(&src).unwrap()).unwrap();
    let v = Verifier::new(m);
    for pot in v.module.pot_names() {
        let t0 = std::time::Instant::now();
        let r = v.verify_pot(&pot);
        let status = match &r.status {
            PotStatus::Proved => "PROVED".to_string(),
            PotStatus::Failed(vs) => format!("FAILED: {}", vs[0]),
            PotStatus::Error(e) => format!("ERROR: {e}"),
        };
        println!(
            "{pot}: {status} in {:?} ({} queries, {} paths)",
            t0.elapsed(),
            r.stats.num_queries,
            r.stats.paths
        );
    }
}
