//! PR 5 harness: incremental solve sessions vs one-shot solving, written
//! to `BENCH_PR5.json` in the unified `tpot-bench/v1` schema.
//!
//! Two in-process phases over the same POTs, same module, same solver
//! portfolio — only `EngineConfig::incremental` differs:
//!
//! 1. **One-shot** — `incremental: false`. Every path query is sliced to
//!    its cone of influence and solved from scratch; `terms_shipped` counts
//!    the terms serialized and re-blasted per query.
//! 2. **Incremental** — `incremental: true` (the production default).
//!    Path queries route through [`SolveSession`]s keyed by path prefix;
//!    `session_reblasted_terms` counts only the terms newly asserted into
//!    a session (the incremental analogue of `terms_shipped`). Span
//!    collection is forced on so the reported wall-clock is the traced one.
//!
//! The harness asserts the invariants PR 5 promises:
//!
//! - **Parity**: incremental and one-shot verification outcomes are
//!   identical (same POTs, same statuses).
//! - **Reuse**: sessions actually hit (`session_hits > 0`) and the
//!   re-blasted-terms ratio (incremental `session_reblasted_terms` over
//!   one-shot `terms_shipped`) is below 0.5 — reusing an asserted prefix
//!   must save more than half the per-query re-blasting work.
//!
//! Usage: `bench_pr5 [target-fragment ...] [--skip-pot FRAG] [--smoke]
//! [--out PATH]` (default: the whole pKVM allocator — `alloc_contig`,
//! formerly skipped outright as a solver-unknown outlier, is now in the
//! default mix; `--smoke` skips it and the ~1-minute `alloc_page`
//! walkthrough for CI, since both cost minutes of solver time per
//! phase).
//!
//! [`SolveSession`]: tpot_solver::SolveSession

use std::time::Instant;

use tpot_bench::report::{
    int, merged_stats, num, outcomes_match, peak_rss_kb, s, status_key, BenchReport, TargetReport,
};
use tpot_engine::{EngineConfig, PotResult, Verifier};
use tpot_obs::json::Value;
use tpot_obs::ObsConfig;
use tpot_targets::all_targets;

fn run_phase(v: &Verifier, pots: &[String]) -> (Vec<PotResult>, f64) {
    let t0 = Instant::now();
    let results = pots.iter().map(|p| v.verify_pot(p)).collect();
    (results, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let mut select: Vec<String> = Vec::new();
    let mut skip_pots: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut out = "BENCH_PR5.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--skip-pot" => skip_pots.extend(args.next()),
            "--smoke" => smoke = true,
            "--out" => out = args.next().unwrap_or(out),
            _ => select.push(a),
        }
    }
    if select.is_empty() {
        select = vec!["pkvm".into()];
    }
    if smoke {
        skip_pots.push("alloc_page".into());
        skip_pots.push("alloc_contig".into());
    }

    let mut report = BenchReport::new("bench_pr5");
    report.meta("smoke", Value::Bool(smoke));
    report.meta(
        "skip_pots",
        Value::Arr(skip_pots.iter().map(|p| s(p.clone())).collect()),
    );

    let mut all_parity = true;
    let mut tot_hits = 0u64;
    let mut tot_misses = 0u64;
    let mut tot_reblasted = 0u64;
    let mut tot_oneshot_shipped = 0u64;
    for t in all_targets() {
        if !select
            .iter()
            .any(|sel| t.name.to_lowercase().contains(&sel.to_lowercase()))
        {
            continue;
        }
        let module = t.verifier().expect("target compiles").module;
        let pots: Vec<String> = module
            .pot_names()
            .into_iter()
            .filter(|p| !skip_pots.iter().any(|f| p.contains(f.as_str())))
            .collect();
        if pots.is_empty() {
            continue;
        }

        // Phase 1: one-shot (sessions off), quiet. Configure defensively in
        // case a TPOT_INCREMENTAL/TPOT_SPANS environment leaked in.
        tpot_obs::configure(ObsConfig::default());
        tpot_obs::take_events();
        let oneshot_cfg = EngineConfig {
            incremental: false,
            ..EngineConfig::default()
        };
        let v1 = Verifier::with_config(module.clone(), oneshot_cfg);
        let (oneshot, oneshot_ms) = run_phase(&v1, &pots);
        let oneshot_stats = merged_stats(&oneshot);

        // Phase 2: incremental sessions on, span collection forced on (no
        // file sinks) so the wall-clock below is the traced one.
        tpot_obs::configure(ObsConfig {
            collect_spans: true,
            ..ObsConfig::default()
        });
        let inc_cfg = EngineConfig {
            incremental: true,
            ..EngineConfig::default()
        };
        let v2 = Verifier::with_config(module, inc_cfg);
        let (incremental, incremental_ms) = run_phase(&v2, &pots);
        let events = tpot_obs::take_events();
        tpot_obs::configure(ObsConfig::default());
        let inc_stats = merged_stats(&incremental);

        let parity = outcomes_match(&oneshot, &incremental);
        let checks = inc_stats.session_hits + inc_stats.session_misses;
        let hit_rate = inc_stats.session_hits as f64 / checks.max(1) as f64;
        let reblast_ratio =
            inc_stats.session_reblasted_terms as f64 / oneshot_stats.terms_shipped.max(1) as f64;
        println!(
            "{}: {} POTs, one-shot {:.0} ms ({} terms shipped), incremental \
             {:.0} ms traced ({} terms re-blasted, {:.1}% session hit rate, \
             {} fallbacks), re-blast ratio {:.3}, parity: {}",
            t.name,
            pots.len(),
            oneshot_ms,
            oneshot_stats.terms_shipped,
            incremental_ms,
            inc_stats.session_reblasted_terms,
            100.0 * hit_rate,
            inc_stats.session_fallbacks,
            reblast_ratio,
            parity
        );

        let mut row = TargetReport::new(t.name);
        row.field("pots", int(pots.len() as u64));
        row.field(
            "outcomes",
            Value::Obj(
                incremental
                    .iter()
                    .map(|r| (r.pot.clone(), s(status_key(&r.status))))
                    .collect(),
            ),
        );
        row.field("parity", Value::Bool(parity));
        row.field("oneshot_ms", num(oneshot_ms));
        row.field("incremental_traced_ms", num(incremental_ms));
        row.field("trace_events", int(events.len() as u64));
        row.field("oneshot_terms_shipped", int(oneshot_stats.terms_shipped));
        row.field("session_hits", int(inc_stats.session_hits));
        row.field("session_misses", int(inc_stats.session_misses));
        row.field("session_fallbacks", int(inc_stats.session_fallbacks));
        row.field(
            "session_reblasted_terms",
            int(inc_stats.session_reblasted_terms),
        );
        row.field("session_hit_rate", num(hit_rate));
        row.field("reblast_ratio", num(reblast_ratio));
        report.targets.push(row);

        all_parity &= parity;
        tot_hits += inc_stats.session_hits;
        tot_misses += inc_stats.session_misses;
        tot_reblasted += inc_stats.session_reblasted_terms;
        tot_oneshot_shipped += oneshot_stats.terms_shipped;
    }

    if report.targets.is_empty() {
        eprintln!("bench_pr5: no target matches {select:?}; nothing measured");
        std::process::exit(2);
    }

    let hit_rate = tot_hits as f64 / (tot_hits + tot_misses).max(1) as f64;
    let reblast_ratio = tot_reblasted as f64 / tot_oneshot_shipped.max(1) as f64;
    let reblast_ok = reblast_ratio < 0.5;
    report.summary("parity", Value::Bool(all_parity));
    report.summary("session_hits", int(tot_hits));
    report.summary("session_misses", int(tot_misses));
    report.summary("session_hit_rate", num(hit_rate));
    report.summary("session_reblasted_terms", int(tot_reblasted));
    report.summary("oneshot_terms_shipped", int(tot_oneshot_shipped));
    report.summary("reblast_ratio", num(reblast_ratio));
    report.summary("reblast_ok", Value::Bool(reblast_ok));
    report.summary("peak_rss_kb", int(peak_rss_kb()));
    report.embed_metrics();
    report.write(&out).expect("write results");
    println!("wrote {out}");

    assert!(
        all_parity,
        "incremental sessions changed a verification outcome"
    );
    assert!(tot_hits > 0, "no path query ever reused a solve session");
    assert!(
        reblast_ok,
        "incremental re-blasted {tot_reblasted} terms vs {tot_oneshot_shipped} \
         shipped one-shot (ratio {reblast_ratio:.3}, need < 0.5)"
    );
}
