//! Table 3: evaluation targets with implementation LOC.
//!
//! Prints the measured LOC of our ports next to the paper's reported LOC.

use tpot_targets::{all_targets, loc::count_loc};

fn main() {
    println!("Table 3: evaluation targets (paper §5.1)");
    println!(
        "{:<22} {:<18} {:<12} {:>9} {:>10} {:>6}",
        "Target", "Category", "Prev. verifier", "paper LOC", "ours LOC", "POTs"
    );
    println!("{:-<84}", "");
    for t in all_targets() {
        let mut loc = count_loc(t.impl_src);
        if let Some(m) = t.models_src {
            loc += count_loc(m);
        }
        let pots = t.pots().map(|p| p.len()).unwrap_or(0);
        println!(
            "{:<22} {:<18} {:<12} {:>9} {:>10} {:>6}",
            t.name, t.category, t.previously_verified_with, t.paper_loc, loc, pots
        );
    }
    println!();
    println!("Ports preserve each target's verification-relevant idioms (DESIGN.md §1);");
    println!("USB driver and Komodo are reduced in incidental breadth.");
}
