//! PR 1 performance harness: sequential vs parallel multi-POT verification
//! and cone-of-influence slicing savings, written to `BENCH_PR1.json` in
//! the unified `tpot-bench/v1` schema (see `tpot_bench::report`).
//!
//! For each selected target it runs `Verifier::verify` with `jobs: 1` (the
//! deterministic sequential baseline) and with the configured job count
//! (the shared-cache worker-pool driver), checks the two report identical
//! POT outcomes, and records wall-clock plus the slicing counters (terms
//! and approximate bytes shipped to solver instances versus the full arena
//! each instance used to clone).
//!
//! Usage: `bench_pr1 [target-fragment ...] [--jobs N] [--out PATH]`
//! (default: the three small targets, `TPOT_JOBS`/core-count jobs,
//! `BENCH_PR1.json` in the current directory).

use std::time::Instant;

use tpot_bench::report::{
    int, merged_stats, num, outcomes_match, stats_fields, BenchReport, TargetReport,
};
use tpot_obs::json::Value;
use tpot_targets::all_targets;

fn main() {
    let mut select: Vec<String> = Vec::new();
    let mut jobs = 0usize;
    let mut out = "BENCH_PR1.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--out" => out = args.next().unwrap_or(out),
            _ => select.push(a),
        }
    }
    if select.is_empty() {
        select = vec!["pkvm".into(), "vigor".into(), "page table".into()];
    }
    let effective_jobs = if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    };

    let mut report = BenchReport::new("bench_pr1");
    report.meta("jobs", int(effective_jobs as u64));
    // Parallel speedup needs ≥ 2 cores; on a single-core host the parallel
    // driver can only match sequential wall-clock (its win there is the
    // shared query cache), so record the core count next to the numbers.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    report.meta("cores", int(cores as u64));

    let mut tot_seq = 0.0f64;
    let mut tot_par = 0.0f64;
    let mut all_match = true;
    for t in all_targets() {
        if !select
            .iter()
            .any(|sel| t.name.to_lowercase().contains(&sel.to_lowercase()))
        {
            continue;
        }
        let v = t.verifier().expect("target compiles");
        let t0 = Instant::now();
        let seq = v.verify(&tpot_engine::VerifyOptions::new().jobs(1));
        let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let par = v.verify(&tpot_engine::VerifyOptions::new().jobs(jobs));
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
        let matches = outcomes_match(&seq, &par);
        let stats = merged_stats(&par);
        println!(
            "{}: {} POTs, sequential {:.0} ms, parallel {:.0} ms ({:.2}x), \
             slicing shipped {}/{} terms, outcomes match: {}",
            t.name,
            seq.len(),
            sequential_ms,
            parallel_ms,
            sequential_ms / parallel_ms.max(1e-9),
            stats.terms_shipped,
            stats.terms_total,
            matches
        );
        let mut row = TargetReport::new(t.name);
        row.field("pots", int(seq.len() as u64));
        row.field("sequential_ms", num(sequential_ms));
        row.field("parallel_ms", num(parallel_ms));
        row.field("speedup", num(sequential_ms / parallel_ms.max(1e-9)));
        row.field("outcomes_match", Value::Bool(matches));
        row.fields.extend(stats_fields(&stats));
        report.targets.push(row);
        tot_seq += sequential_ms;
        tot_par += parallel_ms;
        all_match &= matches;
    }

    if report.targets.is_empty() {
        eprintln!("bench_pr1: no target matches {select:?}; nothing measured");
        std::process::exit(2);
    }

    report.summary("all_outcomes_match", Value::Bool(all_match));
    report.summary("total_sequential_ms", num(tot_seq));
    report.summary("total_parallel_ms", num(tot_par));
    report.summary("total_speedup", num(tot_seq / tot_par.max(1e-9)));
    report.write(&out).expect("write results");
    let _ = tpot_obs::flush();
    println!("wrote {out}");
    assert!(all_match, "parallel and sequential outcomes diverged");
}
