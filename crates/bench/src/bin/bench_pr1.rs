//! PR 1 performance harness: sequential vs parallel multi-POT verification
//! and cone-of-influence slicing savings, written to `BENCH_PR1.json`.
//!
//! For each selected target it runs `Verifier::verify_all` (the
//! deterministic sequential driver) and `Verifier::verify_all_parallel`
//! (the shared-cache worker-pool driver), checks the two report identical
//! POT outcomes, and records wall-clock plus the slicing counters (terms
//! and approximate bytes shipped to solver instances versus the full arena
//! each instance used to clone).
//!
//! Usage: `bench_pr1 [target-fragment ...] [--jobs N] [--out PATH]`
//! (default: the three small targets, `TPOT_JOBS`/core-count jobs,
//! `BENCH_PR1.json` in the current directory).

use std::fmt::Write as _;
use std::time::Instant;

use tpot_engine::{PotResult, PotStatus, Stats};
use tpot_targets::all_targets;

fn status_key(s: &PotStatus) -> String {
    match s {
        PotStatus::Proved => "proved".into(),
        PotStatus::Failed(_) => "failed".into(),
        PotStatus::Error(e) => format!("error:{e}"),
    }
}

fn merged_stats(results: &[PotResult]) -> Stats {
    let mut agg = Stats::default();
    for r in results {
        agg.merge(&r.stats);
    }
    agg
}

struct TargetRow {
    name: String,
    pots: usize,
    sequential_ms: f64,
    parallel_ms: f64,
    outcomes_match: bool,
    stats: Stats,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut select: Vec<String> = Vec::new();
    let mut jobs = 0usize;
    let mut out = "BENCH_PR1.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--out" => out = args.next().unwrap_or(out),
            _ => select.push(a),
        }
    }
    if select.is_empty() {
        select = vec!["pkvm".into(), "vigor".into(), "page table".into()];
    }
    let effective_jobs = if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    };

    let mut rows: Vec<TargetRow> = Vec::new();
    for t in all_targets() {
        if !select
            .iter()
            .any(|s| t.name.to_lowercase().contains(&s.to_lowercase()))
        {
            continue;
        }
        let v = t.verifier().expect("target compiles");
        let t0 = Instant::now();
        let seq = v.verify_all();
        let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let par = v.verify_all_parallel(jobs);
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
        let outcomes_match = seq.len() == par.len()
            && seq
                .iter()
                .zip(par.iter())
                .all(|(a, b)| a.pot == b.pot && status_key(&a.status) == status_key(&b.status));
        let stats = merged_stats(&par);
        println!(
            "{}: {} POTs, sequential {:.0} ms, parallel {:.0} ms ({:.2}x), \
             slicing shipped {}/{} terms, outcomes match: {}",
            t.name,
            seq.len(),
            sequential_ms,
            parallel_ms,
            sequential_ms / parallel_ms.max(1e-9),
            stats.terms_shipped,
            stats.terms_total,
            outcomes_match
        );
        rows.push(TargetRow {
            name: t.name.to_string(),
            pots: seq.len(),
            sequential_ms,
            parallel_ms,
            outcomes_match,
            stats,
        });
    }

    if rows.is_empty() {
        eprintln!("bench_pr1: no target matches {select:?}; nothing measured");
        std::process::exit(2);
    }

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"harness\": \"bench_pr1\",");
    let _ = writeln!(j, "  \"jobs\": {effective_jobs},");
    // Parallel speedup needs ≥ 2 cores; on a single-core host the parallel
    // driver can only match sequential wall-clock (its win there is the
    // shared query cache), so record the core count next to the numbers.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(j, "  \"cores\": {cores},");
    let _ = writeln!(j, "  \"targets\": [");
    for (i, r) in rows.iter().enumerate() {
        let s = &r.stats;
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", json_escape(&r.name));
        let _ = writeln!(j, "      \"pots\": {},", r.pots);
        let _ = writeln!(j, "      \"sequential_ms\": {:.1},", r.sequential_ms);
        let _ = writeln!(j, "      \"parallel_ms\": {:.1},", r.parallel_ms);
        let _ = writeln!(
            j,
            "      \"speedup\": {:.2},",
            r.sequential_ms / r.parallel_ms.max(1e-9)
        );
        let _ = writeln!(j, "      \"outcomes_match\": {},", r.outcomes_match);
        let _ = writeln!(j, "      \"queries\": {},", s.num_queries);
        let _ = writeln!(j, "      \"serializations\": {},", s.num_serializations);
        let _ = writeln!(j, "      \"pointer_queries\": {},", s.pointer_queries);
        let _ = writeln!(j, "      \"branch_queries\": {},", s.branch_queries);
        let _ = writeln!(j, "      \"assertion_queries\": {},", s.assertion_queries);
        let _ = writeln!(j, "      \"simplify_queries\": {},", s.simplify_queries);
        let _ = writeln!(j, "      \"terms_total\": {},", s.terms_total);
        let _ = writeln!(j, "      \"terms_shipped\": {},", s.terms_shipped);
        let _ = writeln!(j, "      \"arena_bytes_total\": {},", s.bytes_total);
        let _ = writeln!(j, "      \"arena_bytes_shipped\": {},", s.bytes_shipped);
        let _ = writeln!(
            j,
            "      \"queue_wait_ms\": {:.1}",
            s.queue_wait.as_secs_f64() * 1e3
        );
        let _ = writeln!(j, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ],");
    let all_match = rows.iter().all(|r| r.outcomes_match);
    let tot_seq: f64 = rows.iter().map(|r| r.sequential_ms).sum();
    let tot_par: f64 = rows.iter().map(|r| r.parallel_ms).sum();
    let _ = writeln!(j, "  \"summary\": {{");
    let _ = writeln!(j, "    \"all_outcomes_match\": {all_match},");
    let _ = writeln!(j, "    \"total_sequential_ms\": {tot_seq:.1},");
    let _ = writeln!(j, "    \"total_parallel_ms\": {tot_par:.1},");
    let _ = writeln!(
        j,
        "    \"total_speedup\": {:.2}",
        tot_seq / tot_par.max(1e-9)
    );
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    std::fs::write(&out, &j).expect("write results");
    println!("wrote {out}");
    assert!(all_match, "parallel and sequential outcomes diverged");
}
