//! PR 7 harness: path-level work-stealing scaling curve, written to
//! `BENCH_PR7.json` in the unified `tpot-bench/v1` schema.
//!
//! Three in-process phases over the same module and POT mix:
//!
//! 1. **Sequential baseline** — `jobs = 1`: the scheduler degenerates to
//!    the old depth-first order; outcomes and path counts from this phase
//!    are the reference for every parity check below.
//! 2. **Scaling** — the same POTs at `jobs ∈ {2, 4}` (default steal
//!    seed). Each point must reproduce the baseline outcomes exactly;
//!    wall-clock per point gives the 1→N scaling curve. The per-phase
//!    deltas of the `sched.*` counters (steals, migrated tasks, shard
//!    splits, handoff re-blasts) quantify how much stealing actually
//!    happened.
//! 3. **Seed parity** — the largest worker count re-run under several
//!    explicit `steal_seed`s. Different seeds pick different victims, so
//!    the steal schedules (and hence shard splits and session handoffs)
//!    genuinely differ — outcomes still may not.
//!
//! The handoff cost model is checked from the scheduler's own counters:
//! `sched.handoff_reblast_terms / sched.handoff_baseline_terms` is the
//! fraction of a migrated path's prefix the thief had to re-blast after
//! inheriting the victim's cloned solve sessions. The
//! longest-common-prefix handoff promises this stays **below 0.5**
//! whenever any migration was measured.
//!
//! Scaling on path-level parallelism is bounded by the path mix: a POT
//! whose wall-clock is one monolithic solver query (`spec__alloc_contig`'s
//! divergent frame check — an adjudicated expected FAILED, see
//! DESIGN.md §5.2) cannot split, which is why the committed artifact skips
//! it while keeping every other pKVM POT.
//!
//! Usage: `bench_pr7 [target-fragment ...] [--skip-pot FRAG] [--smoke]
//! [--out PATH]` (default: the whole pKVM allocator; `--smoke` skips the
//! ~1-minute `alloc_page` walkthrough and the several-minute
//! `alloc_contig` solve, and trims the curve to `jobs ∈ {2}` with one
//! parity seed, for CI).

use std::time::Instant;

use tpot_bench::report::{
    int, num, outcomes_match, peak_rss_kb, s, status_key, BenchReport, TargetReport,
};
use tpot_engine::{EngineConfig, PotResult, Verifier, VerifyOptions};
use tpot_obs::json::Value;
use tpot_targets::all_targets;

/// Snapshot of the scheduler's cumulative counters; phase attribution is
/// by before/after delta.
#[derive(Clone, Copy, Default)]
struct SchedCounters {
    steals: u64,
    migrations: u64,
    shard_splits: u64,
    handoff_reblast: u64,
    handoff_baseline: u64,
    handoffs: u64,
}

impl SchedCounters {
    fn read() -> Self {
        use tpot_obs::metrics::counter;
        SchedCounters {
            steals: counter("sched.steals").get(),
            migrations: counter("sched.migrations").get(),
            shard_splits: counter("sched.shard_splits").get(),
            handoff_reblast: counter("sched.handoff_reblast_terms").get(),
            handoff_baseline: counter("sched.handoff_baseline_terms").get(),
            handoffs: counter("sched.handoffs_measured").get(),
        }
    }

    fn delta(self, before: SchedCounters) -> SchedCounters {
        SchedCounters {
            steals: self.steals - before.steals,
            migrations: self.migrations - before.migrations,
            shard_splits: self.shard_splits - before.shard_splits,
            handoff_reblast: self.handoff_reblast - before.handoff_reblast,
            handoff_baseline: self.handoff_baseline - before.handoff_baseline,
            handoffs: self.handoffs - before.handoffs,
        }
    }
}

struct Phase {
    label: String,
    jobs: usize,
    seed: Option<u64>,
    results: Vec<PotResult>,
    wall_ms: f64,
    sched: SchedCounters,
}

fn run_phase(v: &Verifier, pots: &[String], jobs: usize, seed: Option<u64>) -> Phase {
    let before = SchedCounters::read();
    let mut opts = VerifyOptions::new().pots(pots.iter().cloned()).jobs(jobs);
    if let Some(sd) = seed {
        opts = opts.steal_seed(sd);
    }
    let t0 = Instant::now();
    let results = v.verify(&opts);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    Phase {
        label: match seed {
            Some(sd) => format!("jobs{jobs}-seed{sd}"),
            None => format!("jobs{jobs}"),
        },
        jobs,
        seed,
        results,
        wall_ms,
        sched: SchedCounters::read().delta(before),
    }
}

fn total_paths(rs: &[PotResult]) -> u64 {
    rs.iter().map(|r| r.stats.paths).sum()
}

fn main() {
    let mut select: Vec<String> = Vec::new();
    let mut skip_pots: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut out = "BENCH_PR7.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--skip-pot" => skip_pots.extend(args.next()),
            "--smoke" => smoke = true,
            "--out" => out = args.next().unwrap_or(out),
            _ => select.push(a),
        }
    }
    if select.is_empty() {
        select = vec!["pkvm".into()];
    }
    if smoke {
        skip_pots.push("alloc_page".into());
        skip_pots.push("alloc_contig".into());
    }
    let worker_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let parity_seeds: &[u64] = if smoke { &[1] } else { &[1, 2, 3] };

    let mut report = BenchReport::new("bench_pr7");
    report.meta("smoke", Value::Bool(smoke));
    report.meta(
        "skip_pots",
        Value::Arr(skip_pots.iter().map(|p| s(p.clone())).collect()),
    );
    report.meta(
        "worker_counts",
        Value::Arr(worker_counts.iter().map(|&n| int(n as u64)).collect()),
    );
    report.meta(
        "parity_seeds",
        Value::Arr(parity_seeds.iter().map(|&sd| int(sd)).collect()),
    );

    let mut all_parity = true;
    let mut tot_handoff_reblast = 0u64;
    let mut tot_handoff_baseline = 0u64;
    let mut tot_handoffs = 0u64;
    let mut tot_migrations = 0u64;
    for t in all_targets() {
        if !select
            .iter()
            .any(|sel| t.name.to_lowercase().contains(&sel.to_lowercase()))
        {
            continue;
        }
        let module = t.verifier().expect("target compiles").module;
        let pots: Vec<String> = module
            .pot_names()
            .into_iter()
            .filter(|p| !skip_pots.iter().any(|f| p.contains(f.as_str())))
            .collect();
        if pots.is_empty() {
            continue;
        }
        let cfg = EngineConfig {
            incremental: true,
            ..EngineConfig::default()
        };
        let v = Verifier::with_config(module, cfg);

        let baseline = run_phase(&v, &pots, 1, None);
        let mut phases: Vec<Phase> = Vec::new();
        for &n in worker_counts {
            phases.push(run_phase(&v, &pots, n, None));
        }
        let top = *worker_counts.last().unwrap_or(&2);
        for &sd in parity_seeds {
            phases.push(run_phase(&v, &pots, top, Some(sd)));
        }

        let mut row = TargetReport::new(t.name);
        row.field("pots", int(pots.len() as u64));
        row.field(
            "outcomes",
            Value::Obj(
                baseline
                    .results
                    .iter()
                    .map(|r| (r.pot.clone(), s(status_key(&r.status))))
                    .collect(),
            ),
        );
        row.field("sequential_ms", num(baseline.wall_ms));
        row.field("sequential_paths", int(total_paths(&baseline.results)));
        let mut curve: Vec<(String, Value)> = vec![("1".into(), num(baseline.wall_ms))];
        let mut phase_rows: Vec<Value> = Vec::new();
        let mut parity = true;
        for p in &phases {
            let outcomes_ok = outcomes_match(&baseline.results, &p.results);
            let paths_ok = total_paths(&baseline.results) == total_paths(&p.results);
            parity &= outcomes_ok && paths_ok;
            if p.seed.is_none() {
                curve.push((p.jobs.to_string(), num(p.wall_ms)));
            }
            let speedup = baseline.wall_ms / p.wall_ms.max(1e-9);
            println!(
                "{}: {} at {:.0} ms ({:.2}x vs sequential {:.0} ms), {} steals, \
                 {} migrated tasks, {} shard splits, parity: {}",
                t.name,
                p.label,
                p.wall_ms,
                speedup,
                baseline.wall_ms,
                p.sched.steals,
                p.sched.migrations,
                p.sched.shard_splits,
                outcomes_ok && paths_ok,
            );
            phase_rows.push(Value::Obj(vec![
                ("label".into(), s(p.label.clone())),
                ("jobs".into(), int(p.jobs as u64)),
                ("steal_seed".into(), p.seed.map(int).unwrap_or(Value::Null)),
                ("wall_ms".into(), num(p.wall_ms)),
                ("speedup".into(), num(speedup)),
                ("paths".into(), int(total_paths(&p.results))),
                ("steals".into(), int(p.sched.steals)),
                ("migrated_tasks".into(), int(p.sched.migrations)),
                ("shard_splits".into(), int(p.sched.shard_splits)),
                ("handoffs_measured".into(), int(p.sched.handoffs)),
                ("handoff_reblast_terms".into(), int(p.sched.handoff_reblast)),
                (
                    "handoff_baseline_terms".into(),
                    int(p.sched.handoff_baseline),
                ),
                ("parity".into(), Value::Bool(outcomes_ok && paths_ok)),
            ]));
            tot_handoff_reblast += p.sched.handoff_reblast;
            tot_handoff_baseline += p.sched.handoff_baseline;
            tot_handoffs += p.sched.handoffs;
            tot_migrations += p.sched.migrations;
        }
        row.field("scaling_curve_ms", Value::Obj(curve));
        row.field("phases", Value::Arr(phase_rows));
        row.field("parity", Value::Bool(parity));
        report.targets.push(row);
        all_parity &= parity;
    }

    if report.targets.is_empty() {
        eprintln!("bench_pr7: no target matches {select:?}; nothing measured");
        std::process::exit(2);
    }

    // Handoff cost model: fraction of the inherited sessions' prefix the
    // thief re-blasted on its first post-migration query.
    let handoff_ratio = tot_handoff_reblast as f64 / tot_handoff_baseline.max(1) as f64;
    let handoff_ok = tot_handoffs == 0 || handoff_ratio < 0.5;
    report.summary("parity", Value::Bool(all_parity));
    report.summary("migrated_tasks", int(tot_migrations));
    report.summary("handoffs_measured", int(tot_handoffs));
    report.summary("handoff_reblast_terms", int(tot_handoff_reblast));
    report.summary("handoff_baseline_terms", int(tot_handoff_baseline));
    report.summary("handoff_reblast_ratio", num(handoff_ratio));
    report.summary("handoff_ok", Value::Bool(handoff_ok));
    report.summary("peak_rss_kb", int(peak_rss_kb()));
    report.embed_metrics();
    report.write(&out).expect("write results");
    println!(
        "wrote {out} ({} migrated tasks, handoff re-blast ratio {handoff_ratio:.3})",
        tot_migrations
    );

    assert!(
        all_parity,
        "work-stealing changed a verification outcome or path count"
    );
    assert!(
        handoff_ok,
        "session handoff re-blasted {tot_handoff_reblast} of {tot_handoff_baseline} \
         baseline terms (ratio {handoff_ratio:.3}, need < 0.5)"
    );
}
