//! CI validator for Chrome-trace files produced by `TPOT_TRACE=...`.
//!
//! Checks that the trace (a) parses as the Chrome Trace Event Format
//! document `tpot-obs` emits, (b) has properly nested Begin/End pairs per
//! thread — an End that does not match the innermost open Begin is fatal —
//! and (c) contains at least one `solver`-category span: the whole point
//! of the artifact is solver time-attribution, so a trace without solver
//! spans means the instrumentation regressed. Spans still open at the end
//! of the file are reported but tolerated: the engine flushes sinks after
//! every POT, so a trace is a snapshot and may capture in-flight work
//! (e.g. a cancelled portfolio job that has not yet observed its cancel
//! flag). Perfetto renders such spans as running to the trace end.
//!
//! Usage: `trace_check TRACE.json`; exits nonzero on any violation.

use std::collections::HashMap;
use std::process::exit;

use tpot_obs::json::{parse, Value};

fn die(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    exit(1);
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check TRACE.json");
        exit(2);
    };
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let doc = parse(&text).unwrap_or_else(|e| die(&format!("{path} is not valid JSON: {e}")));

    let Some(events) = doc.get("traceEvents").and_then(Value::as_arr) else {
        die(&format!("{path} has no traceEvents array"));
    };
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0) as u64;

    // Per-tid stacks; events are sorted by timestamp with per-thread order
    // preserved, so each thread's B/E pairs must nest.
    let mut stacks: HashMap<u64, Vec<(String, String)>> = HashMap::new();
    let mut matched = 0u64;
    let mut instants = 0u64;
    let mut solver_spans = 0u64;
    let mut last_ts = f64::MIN;
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| ev.get(k).and_then(Value::as_str).map(str::to_string);
        let ph = field("ph").unwrap_or_else(|| die(&format!("event {i} has no ph")));
        let name = field("name").unwrap_or_else(|| die(&format!("event {i} has no name")));
        let cat = field("cat").unwrap_or_else(|| die(&format!("event {i} has no cat")));
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| die(&format!("event {i} has no numeric ts")));
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| die(&format!("event {i} has no numeric tid")))
            as u64;
        if ts < last_ts {
            die(&format!("event {i} out of timestamp order"));
        }
        last_ts = ts;
        match ph.as_str() {
            "B" => {
                if cat == "solver" {
                    solver_spans += 1;
                }
                stacks.entry(tid).or_default().push((cat, name));
            }
            "E" => match stacks.entry(tid).or_default().pop() {
                Some((_, open)) if open == name => matched += 1,
                Some((_, open)) => die(&format!(
                    "event {i}: End of {name:?} but {open:?} is open on tid {tid}"
                )),
                None => die(&format!("event {i}: End of {name:?} with no open span")),
            },
            "i" => instants += 1,
            other => die(&format!("event {i}: unexpected phase {other:?}")),
        }
    }
    let open: u64 = stacks.values().map(|s| s.len() as u64).sum();
    if solver_spans == 0 {
        die("no solver-category spans — solver time-attribution is missing");
    }
    println!(
        "trace_check: OK ({} events, {matched} matched spans, {instants} instants, \
         {solver_spans} solver spans, {open} still open, {dropped} dropped)",
        events.len()
    );
}
