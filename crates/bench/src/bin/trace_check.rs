//! CI validator for Chrome-trace files produced by `TPOT_TRACE=...`.
//!
//! Checks that the trace (a) parses as the Chrome Trace Event Format
//! document `tpot-obs` emits, (b) has properly nested Begin/End pairs per
//! thread — an End that does not match the innermost open Begin is fatal
//! unless the trace reports dropped events — and (c) contains at least one
//! `solver`-category span: the whole point of the artifact is solver
//! time-attribution, so a trace without solver spans means the
//! instrumentation regressed. Spans still open at the end of the file are
//! reported but tolerated: the engine flushes sinks after every POT, so a
//! trace is a snapshot and may capture in-flight work (e.g. a cancelled
//! portfolio job that has not yet observed its cancel flag). Perfetto
//! renders such spans as running to the trace end.
//!
//! Multi-worker traces (`TPOT_PATH_JOBS > 1`) get scheduler-shape checks
//! on top:
//!
//! - timestamps must be monotone globally (the exporter sorts) *and* per
//!   thread (per-thread order is what span nesting is defined over);
//! - `engine.episode` spans are the unit of scheduling and must be
//!   top-level on their thread — an episode nested inside another episode
//!   (or inside a `sched.steal`/`sched.idle` span) means a worker
//!   re-entered the scheduler mid-episode;
//! - `sched.steal`/`sched.idle` spans live in the worker loop *between*
//!   episodes, so one opening while an episode is open on the same thread
//!   is fatal;
//! - event accounting must close: every event is a matched Begin/End, a
//!   still-open Begin, or an instant — unless `otherData.dropped_events`
//!   says the ring buffer overflowed, in which case unmatched Ends are
//!   tolerated (their Begins were dropped) but still counted and reported.
//!
//! Usage: `trace_check TRACE.json`; exits nonzero on any violation.

use std::collections::HashMap;
use std::process::exit;

use tpot_obs::json::{parse, Value};

fn die(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    exit(1);
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check TRACE.json");
        exit(2);
    };
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let doc = parse(&text).unwrap_or_else(|e| die(&format!("{path} is not valid JSON: {e}")));

    let Some(events) = doc.get("traceEvents").and_then(Value::as_arr) else {
        die(&format!("{path} has no traceEvents array"));
    };
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0) as u64;

    // Per-tid stacks; events are sorted by timestamp with per-thread order
    // preserved, so each thread's B/E pairs must nest.
    let mut stacks: HashMap<u64, Vec<(String, String)>> = HashMap::new();
    let mut last_ts_by_tid: HashMap<u64, f64> = HashMap::new();
    let mut matched = 0u64;
    let mut orphan_ends = 0u64;
    let mut instants = 0u64;
    let mut solver_spans = 0u64;
    let mut episode_spans = 0u64;
    let mut steal_spans = 0u64;
    let mut idle_spans = 0u64;
    let mut last_ts = f64::MIN;
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| ev.get(k).and_then(Value::as_str).map(str::to_string);
        let ph = field("ph").unwrap_or_else(|| die(&format!("event {i} has no ph")));
        let name = field("name").unwrap_or_else(|| die(&format!("event {i} has no name")));
        let cat = field("cat").unwrap_or_else(|| die(&format!("event {i} has no cat")));
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| die(&format!("event {i} has no numeric ts")));
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| die(&format!("event {i} has no numeric tid")))
            as u64;
        if ts < last_ts {
            die(&format!("event {i} out of timestamp order"));
        }
        last_ts = ts;
        let tid_last = last_ts_by_tid.entry(tid).or_insert(f64::MIN);
        if ts < *tid_last {
            die(&format!("event {i} out of timestamp order on tid {tid}"));
        }
        *tid_last = ts;
        match ph.as_str() {
            "B" => {
                if cat == "solver" {
                    solver_spans += 1;
                }
                let stack = stacks.entry(tid).or_default();
                let is_episode = cat == "engine" && name == "episode";
                let is_sched = cat == "sched" && (name == "steal" || name == "idle");
                if is_episode || is_sched {
                    // The scheduler's own spans never nest in each other:
                    // episodes are the unit of scheduling, steal/idle live
                    // between them in the worker loop.
                    if let Some((oc, on)) = stack.iter().find(|(oc, on)| {
                        (oc == "engine" && on == "episode")
                            || (oc == "sched" && (on == "steal" || on == "idle"))
                    }) {
                        die(&format!(
                            "event {i}: {cat}.{name} opened inside {oc}.{on} on tid {tid}"
                        ));
                    }
                    if is_episode {
                        episode_spans += 1;
                    } else if name == "steal" {
                        steal_spans += 1;
                    } else {
                        idle_spans += 1;
                    }
                }
                stack.push((cat, name));
            }
            "E" => match stacks.entry(tid).or_default().pop() {
                Some((_, open)) if open == name => matched += 1,
                Some((_, open)) => die(&format!(
                    "event {i}: End of {name:?} but {open:?} is open on tid {tid}"
                )),
                None if dropped > 0 => orphan_ends += 1,
                None => die(&format!(
                    "event {i}: End of {name:?} with no open span (and no dropped events)"
                )),
            },
            "i" => instants += 1,
            other => die(&format!("event {i}: unexpected phase {other:?}")),
        }
    }
    let open: u64 = stacks.values().map(|s| s.len() as u64).sum();
    if solver_spans == 0 {
        die("no solver-category spans — solver time-attribution is missing");
    }
    // Every event must be accounted for: matched pairs, still-open Begins,
    // orphaned Ends (dropped counterpart), or instants.
    let accounted = 2 * matched + open + orphan_ends + instants;
    if accounted != events.len() as u64 {
        die(&format!(
            "event accounting does not close: {} events but {accounted} accounted \
             (2*{matched} matched + {open} open + {orphan_ends} orphan ends + {instants} instants)",
            events.len()
        ));
    }
    println!(
        "trace_check: OK ({} events on {} thread(s), {matched} matched spans, {instants} \
         instants, {solver_spans} solver spans, {episode_spans} episodes, {steal_spans} steals, \
         {idle_spans} idles, {open} still open, {orphan_ends} orphan ends, {dropped} dropped)",
        events.len(),
        last_ts_by_tid.len()
    );
}
