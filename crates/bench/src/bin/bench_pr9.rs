//! PR 9 harness: flight-recorder acceptance, written to `BENCH_PR9.json`
//! in the unified `tpot-bench/v1` schema.
//!
//! Four checks over the pKVM suite, all in one process:
//!
//! 1. **Counter conservation at `jobs = 4`** — the per-POT solver
//!    counters (per-shard sink deltas summed into each `PotResult`) must
//!    add up to *exactly* the process-wide `sat.*` registry delta over
//!    the run, per field. Before PR 9 attribution snapshotted the global
//!    counters around each POT and was exact only at `jobs = 1`
//!    (concurrent POTs overlapped their windows); the sink scheme makes
//!    the overlap error identically zero at any worker count, and this
//!    harness measures that error rather than assuming it.
//! 2. **Proof-effort blame** — with blame tracking on, at least one
//!    *proved* POT must report a provenance-tagged assumption core
//!    (`cores > 0` and a kind other than `other`): the `analyze_final`
//!    walk over the PR 5 activation literals reached a tagged premise /
//!    invariant / layout axiom / path literal. Top entries per POT are
//!    printed and embedded in the report.
//! 3. **Path-tree profile** — the exclusive per-path effort tree must be
//!    non-empty and is embedded as collapsed-stack lines (the
//!    `flamegraph.pl` input format), making every committed bench
//!    artifact carry its own profile.
//! 4. **Diff self-test** — `tpot_bench::diff` must pass this very report
//!    against itself and must FAIL it against a copy with a synthetic
//!    +25% wall-clock regression injected. This pins the regression
//!    observatory's gate behaviour inside the artifact that CI diffs.
//!
//! Usage: `bench_pr9 [target-fragment ...] [--skip-pot FRAG] [--smoke]
//! [--out PATH]` (default: the whole pKVM allocator; `--smoke` skips the
//! ~1-minute `alloc_page` walkthrough and the several-minute
//! `alloc_contig` solve, for CI).

use std::time::Instant;

use tpot_bench::diff::{diff_reports, DiffConfig};
use tpot_bench::report::{int, num, peak_rss_kb, s, status_key, BenchReport, TargetReport};
use tpot_engine::{EngineConfig, PotStatus, Verifier, VerifyOptions};
use tpot_obs::json::Value;
use tpot_obs::ObsConfig;
use tpot_targets::all_targets;

/// The counters the solver publishes per solve and the engine attributes
/// per shard: (registry key, per-POT extractor).
type Field = (&'static str, fn(&tpot_engine::Stats) -> u64);
const FIELDS: [Field; 6] = [
    ("sat.solves", |s| s.sat_solves),
    ("sat.conflicts", |s| s.sat_conflicts),
    ("sat.decisions", |s| s.sat_decisions),
    ("sat.propagations", |s| s.sat_propagations),
    ("sat.restarts", |s| s.sat_restarts),
    ("sat.learned_clauses", |s| s.sat_learned),
];

/// The acceptance worker count: attribution must be exact under real
/// concurrency, not just at the degenerate sequential schedule.
const JOBS: usize = 4;

/// Largest `*_ms` value in the tree (0 when none).
fn max_ms(v: &Value) -> f64 {
    match v {
        Value::Obj(entries) => entries
            .iter()
            .map(|(k, val)| {
                if k.ends_with("_ms") {
                    if let Value::Num(n) = val {
                        return *n;
                    }
                }
                max_ms(val)
            })
            .fold(0.0, f64::max),
        Value::Arr(items) => items.iter().map(max_ms).fold(0.0, f64::max),
        _ => 0.0,
    }
}

/// Multiplies every `*_ms` number in the tree by `factor` — the
/// synthetic-regression injector for the diff self-test.
fn inflate_ms(v: &mut Value, factor: f64) {
    match v {
        Value::Obj(entries) => {
            for (k, val) in entries.iter_mut() {
                if k.ends_with("_ms") {
                    if let Value::Num(n) = val {
                        *n *= factor;
                        continue;
                    }
                }
                inflate_ms(val, factor);
            }
        }
        Value::Arr(items) => {
            for it in items.iter_mut() {
                inflate_ms(it, factor);
            }
        }
        _ => {}
    }
}

fn main() {
    let mut select: Vec<String> = Vec::new();
    let mut skip_pots: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut out = "BENCH_PR9.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--skip-pot" => skip_pots.extend(args.next()),
            "--smoke" => smoke = true,
            "--out" => out = args.next().unwrap_or(out),
            _ => select.push(a),
        }
    }
    if select.is_empty() {
        select = vec!["pkvm".into()];
    }
    if smoke {
        skip_pots.push("alloc_page".into());
        skip_pots.push("alloc_contig".into());
    }

    // Blame tracking on for the whole run (the env default is off because
    // tagging feeds the solver's tracked-literal bookkeeping).
    tpot_obs::configure(ObsConfig {
        blame: Some(true),
        ..ObsConfig::default()
    });

    let mut report = BenchReport::new("bench_pr9");
    report.meta("smoke", Value::Bool(smoke));
    report.meta("jobs", int(JOBS as u64));
    report.meta(
        "skip_pots",
        Value::Arr(skip_pots.iter().map(|p| s(p.clone())).collect()),
    );

    let t0 = Instant::now();
    let mut conservation = true;
    let mut attribution_error = 0u64;
    let mut blame_tagged_pots = 0u64;
    let mut profile_paths = 0u64;
    let mut profile_solver_us = 0u64;
    for t in all_targets() {
        if !select
            .iter()
            .any(|sel| t.name.to_lowercase().contains(&sel.to_lowercase()))
        {
            continue;
        }
        let module = t.verifier().expect("target compiles").module;
        let pots: Vec<String> = module
            .pot_names()
            .into_iter()
            .filter(|p| !skip_pots.iter().any(|f| p.contains(f.as_str())))
            .collect();
        if pots.is_empty() {
            continue;
        }
        let v = Verifier::with_config(module, EngineConfig::default());

        let before: Vec<u64> = FIELDS
            .iter()
            .map(|(k, _)| tpot_obs::metrics::counter(k).get())
            .collect();
        let wall = Instant::now();
        let results = v.verify(&VerifyOptions::new().pots(pots.iter().cloned()).jobs(JOBS));
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

        // 1. Conservation: per-POT sums vs the global registry delta.
        let mut cons_rows: Vec<(String, Value)> = Vec::new();
        for (i, (key, field)) in FIELDS.iter().enumerate() {
            let global = tpot_obs::metrics::counter(key).get() - before[i];
            let attributed: u64 = results.iter().map(|r| field(&r.stats)).sum();
            let exact = attributed == global;
            conservation &= exact;
            attribution_error += attributed.abs_diff(global);
            cons_rows.push((
                key.to_string(),
                Value::Obj(vec![
                    ("global".into(), int(global)),
                    ("attributed".into(), int(attributed)),
                    ("exact".into(), Value::Bool(exact)),
                ]),
            ));
            println!(
                "{}: {key}: global {global}, attributed {attributed} ({})",
                t.name,
                if exact { "exact" } else { "MISMATCH" }
            );
        }

        // 2 + 3. Blame and profile, per POT.
        let mut pot_rows: Vec<Value> = Vec::new();
        for r in &results {
            let proved = matches!(r.status, PotStatus::Proved);
            let tagged_core = r
                .blame
                .iter()
                .any(|e| e.core_count > 0 && e.kind != tpot_engine::prov::ProvKind::Other);
            if proved && tagged_core {
                blame_tagged_pots += 1;
            }
            if !r.blame.is_empty() {
                println!("{}: blame (top {}):", r.pot, r.blame.len().min(5));
                for e in r.blame.iter().take(5) {
                    println!("    {}", e.render());
                }
            }
            let prof_total = r.profile.total();
            profile_paths += r.profile.iter_sorted().len() as u64;
            profile_solver_us += prof_total.solver_us;
            pot_rows.push(Value::Obj(vec![
                ("label".into(), s(r.pot.clone())),
                ("status".into(), s(status_key(&r.status))),
                ("paths".into(), int(r.stats.paths)),
                ("blame_entries".into(), int(r.blame.len() as u64)),
                ("blame_tagged_core".into(), Value::Bool(tagged_core)),
                (
                    "blame_top".into(),
                    Value::Arr(r.blame.iter().take(5).map(|e| s(e.render())).collect()),
                ),
                (
                    "profile_paths".into(),
                    int(r.profile.iter_sorted().len() as u64),
                ),
                ("profile_solver_us".into(), int(prof_total.solver_us)),
                (
                    "profile_collapsed".into(),
                    s(r.profile.collapsed_stack(&r.pot)),
                ),
            ]));
        }

        let mut row = TargetReport::new(t.name);
        row.field("pots", int(pots.len() as u64));
        row.field(
            "outcomes",
            Value::Obj(
                results
                    .iter()
                    .map(|r| (r.pot.clone(), s(status_key(&r.status))))
                    .collect(),
            ),
        );
        row.field("wall_ms", num(wall_ms));
        row.field("counter_conservation", Value::Obj(cons_rows));
        row.field("pot_rows", Value::Arr(pot_rows));
        report.targets.push(row);
    }

    if report.targets.is_empty() {
        eprintln!("bench_pr9: no target matches {select:?}; nothing measured");
        std::process::exit(2);
    }

    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    report.summary("conservation", Value::Bool(conservation));
    report.summary("attribution_error", int(attribution_error));
    report.summary("blame_tagged_pots", int(blame_tagged_pots));
    report.summary("profile_paths", int(profile_paths));
    report.summary("profile_solver_us", int(profile_solver_us));
    report.summary("wall_ms", num(total_ms));
    report.summary("peak_rss_kb", int(peak_rss_kb()));

    // 4. Diff self-test against the (pre-self-test) document: identical
    // reports must pass, an injected +25% wall-clock regression must
    // fail — under the *default* gate (20% relative AND 100 ms absolute
    // floor). A --smoke run can finish entirely under the floor (the
    // floor doing its noise-suppression job), so when the report's walls
    // are floor-small both sides are scaled by the same constant first:
    // identity is preserved, relative structure is preserved, and the
    // injection then tests the gate at the magnitudes real full-run
    // artifacts have.
    let mut doc = tpot_obs::json::parse(&report.render()).expect("report parses");
    let cfg = DiffConfig::default();
    if max_ms(&doc) < 4.0 * cfg.time_floor_ms {
        inflate_ms(&mut doc, 1000.0);
    }
    let selftest_identical = !diff_reports(&doc, &doc, &cfg).failed();
    let mut inflated = doc.clone();
    inflate_ms(&mut inflated, 1.25);
    let regression = diff_reports(&doc, &inflated, &cfg);
    let selftest_regression = regression.failed();
    println!(
        "diff self-test: identical {} (must pass), +25% injected {} ({} fail line(s), must fail)",
        if selftest_identical {
            "passes"
        } else {
            "FAILS"
        },
        if selftest_regression {
            "flagged"
        } else {
            "MISSED"
        },
        regression.fail_count()
    );
    report.summary(
        "diff_selftest_identical_ok",
        Value::Bool(selftest_identical),
    );
    report.summary(
        "diff_selftest_regression_flagged",
        Value::Bool(selftest_regression),
    );

    report.embed_metrics();
    report.write(&out).expect("write results");
    println!(
        "wrote {out} (conservation {conservation}, attribution error {attribution_error}, \
         {blame_tagged_pots} proved POT(s) with tagged cores, {profile_paths} profiled paths)"
    );

    assert!(
        conservation,
        "per-POT counter sums diverged from the global registry delta by \
         {attribution_error} at jobs={JOBS}"
    );
    assert!(
        blame_tagged_pots > 0,
        "no proved POT reported a provenance-tagged assumption core"
    );
    assert!(
        profile_solver_us > 0 && profile_paths > 0,
        "path-tree profile is empty"
    );
    assert!(selftest_identical, "diff failed two identical reports");
    assert!(
        selftest_regression,
        "diff missed an injected +25% wall-clock regression"
    );
}
