//! PR 2 performance harness: copy-on-write fork accounting per target,
//! written to `BENCH_PR2.json`.
//!
//! For each selected target it runs the sequential and parallel drivers,
//! checks they report identical POT outcomes (the COW state representation
//! must not change any verdict), and records wall-clock, the fork counters
//! (`forks`, `fork_bytes_shared`, `fork_bytes_copied`, `live_peak`) and
//! the process peak RSS (`VmHWM` from `/proc/self/status`; 0 where
//! unavailable). `fork_bytes_shared / (shared + copied)` is the fraction
//! of state bytes a deep-clone engine would have copied on every fork but
//! the persistent representation shares.
//!
//! Usage: `bench_pr2 [target-fragment ...] [--smoke] [--skip-pot FRAG]
//! [--out PATH]` (default: every target and every POT; `--smoke` narrows
//! to the pKVM allocator minus the known solver-unknown outlier POT
//! `alloc_contig`, keeping the step CI-sized — every other target has
//! multi-minute POTs on a single core).

use std::fmt::Write as _;
use std::time::Instant;

use tpot_engine::{PotResult, PotStatus, Stats};
use tpot_targets::all_targets;

fn status_key(s: &PotStatus) -> String {
    match s {
        PotStatus::Proved => "proved".into(),
        PotStatus::Failed(_) => "failed".into(),
        PotStatus::Error(e) => format!("error:{e}"),
    }
}

fn merged_stats(results: &[PotResult]) -> Stats {
    let mut agg = Stats::default();
    for r in results {
        agg.merge(&r.stats);
    }
    agg
}

/// Peak resident set size of this process in kilobytes, from Linux's
/// `VmHWM` line. Monotone over the process lifetime; 0 on other platforms.
fn peak_rss_kb() -> u64 {
    let Ok(s) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in s.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

struct TargetRow {
    name: String,
    pots: usize,
    statuses: Vec<(String, String)>,
    sequential_ms: f64,
    parallel_ms: f64,
    outcomes_match: bool,
    peak_rss_kb: u64,
    stats: Stats,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut select: Vec<String> = Vec::new();
    let mut skip_pots: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut out = "BENCH_PR2.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--skip-pot" => skip_pots.extend(args.next()),
            "--out" => out = args.next().unwrap_or(out),
            _ => select.push(a),
        }
    }
    if smoke {
        if select.is_empty() {
            select = vec!["pkvm".into()];
        }
        // `spec__alloc_contig` hits a solver-unknown after ~13 min of
        // search (a pre-existing solver limitation, identical before and
        // after the COW refactor); it would dominate a CI smoke run.
        skip_pots.push("alloc_contig".into());
    }

    let mut rows: Vec<TargetRow> = Vec::new();
    for t in all_targets() {
        if !select.is_empty()
            && !select
                .iter()
                .any(|s| t.name.to_lowercase().contains(&s.to_lowercase()))
        {
            continue;
        }
        let v = t.verifier().expect("target compiles");
        let pots: Vec<String> = v
            .module
            .pot_names()
            .into_iter()
            .filter(|p| !skip_pots.iter().any(|f| p.contains(f.as_str())))
            .collect();
        if pots.is_empty() {
            continue;
        }
        let t0 = Instant::now();
        let seq: Vec<PotResult> = pots.iter().map(|p| v.verify_pot(p)).collect();
        let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let par = v.verify_pots_parallel(&pots, 0);
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
        let outcomes_match = seq.len() == par.len()
            && seq
                .iter()
                .zip(par.iter())
                .all(|(a, b)| a.pot == b.pot && status_key(&a.status) == status_key(&b.status));
        let stats = merged_stats(&seq);
        let shared = stats.fork_bytes_shared;
        let copied = stats.fork_bytes_copied;
        println!(
            "{}: {} POTs, seq {:.0} ms, par {:.0} ms, {} forks \
             (shared {} KiB, copied {} KiB, {:.1}% shared), live peak {}, \
             outcomes match: {}",
            t.name,
            seq.len(),
            sequential_ms,
            parallel_ms,
            stats.forks,
            shared / 1024,
            copied / 1024,
            100.0 * shared as f64 / ((shared + copied).max(1)) as f64,
            stats.live_peak,
            outcomes_match
        );
        rows.push(TargetRow {
            name: t.name.to_string(),
            pots: seq.len(),
            statuses: seq
                .iter()
                .map(|r| (r.pot.clone(), status_key(&r.status)))
                .collect(),
            sequential_ms,
            parallel_ms,
            outcomes_match,
            peak_rss_kb: peak_rss_kb(),
            stats,
        });
    }

    if rows.is_empty() {
        eprintln!("bench_pr2: no target matches {select:?}; nothing measured");
        std::process::exit(2);
    }

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"harness\": \"bench_pr2\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"targets\": [");
    for (i, r) in rows.iter().enumerate() {
        let s = &r.stats;
        let shared = s.fork_bytes_shared;
        let copied = s.fork_bytes_copied;
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", json_escape(&r.name));
        let _ = writeln!(j, "      \"pots\": {},", r.pots);
        let _ = writeln!(j, "      \"outcomes\": {{");
        for (k, (pot, st)) in r.statuses.iter().enumerate() {
            let _ = writeln!(
                j,
                "        \"{}\": \"{}\"{}",
                json_escape(pot),
                json_escape(st),
                if k + 1 < r.statuses.len() { "," } else { "" }
            );
        }
        let _ = writeln!(j, "      }},");
        let _ = writeln!(j, "      \"sequential_ms\": {:.1},", r.sequential_ms);
        let _ = writeln!(j, "      \"parallel_ms\": {:.1},", r.parallel_ms);
        let _ = writeln!(j, "      \"outcomes_match\": {},", r.outcomes_match);
        let _ = writeln!(j, "      \"paths\": {},", s.paths);
        let _ = writeln!(j, "      \"forks\": {},", s.forks);
        let _ = writeln!(j, "      \"fork_bytes_shared\": {shared},");
        let _ = writeln!(j, "      \"fork_bytes_copied\": {copied},");
        let _ = writeln!(
            j,
            "      \"fork_shared_fraction\": {:.4},",
            shared as f64 / ((shared + copied).max(1)) as f64
        );
        let _ = writeln!(j, "      \"live_peak\": {},", s.live_peak);
        let _ = writeln!(j, "      \"queries\": {},", s.num_queries);
        let _ = writeln!(j, "      \"peak_rss_kb\": {}", r.peak_rss_kb);
        let _ = writeln!(j, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ],");
    let all_match = rows.iter().all(|r| r.outcomes_match);
    let tot_forks: u64 = rows.iter().map(|r| r.stats.forks).sum();
    let tot_shared: u64 = rows.iter().map(|r| r.stats.fork_bytes_shared).sum();
    let tot_copied: u64 = rows.iter().map(|r| r.stats.fork_bytes_copied).sum();
    let _ = writeln!(j, "  \"summary\": {{");
    let _ = writeln!(j, "    \"all_outcomes_match\": {all_match},");
    let _ = writeln!(j, "    \"total_forks\": {tot_forks},");
    let _ = writeln!(j, "    \"total_fork_bytes_shared\": {tot_shared},");
    let _ = writeln!(j, "    \"total_fork_bytes_copied\": {tot_copied},");
    let _ = writeln!(j, "    \"peak_rss_kb\": {}", peak_rss_kb());
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    std::fs::write(&out, &j).expect("write results");
    println!("wrote {out}");
    assert!(all_match, "sequential and parallel outcomes diverged");
}
