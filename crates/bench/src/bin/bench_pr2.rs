//! PR 2 performance harness: copy-on-write fork accounting per target,
//! written to `BENCH_PR2.json` in the unified `tpot-bench/v1` schema (see
//! `tpot_bench::report`).
//!
//! For each selected target it runs the sequential and parallel drivers,
//! checks they report identical POT outcomes (the COW state representation
//! must not change any verdict), and records wall-clock, the fork counters
//! (`forks`, `fork_bytes_shared`, `fork_bytes_copied`, `live_peak`) and
//! the process peak RSS. `fork_bytes_shared / (shared + copied)` is the
//! fraction of state bytes a deep-clone engine would have copied on every
//! fork but the persistent representation shares.
//!
//! Usage: `bench_pr2 [target-fragment ...] [--smoke] [--skip-pot FRAG]
//! [--out PATH]` (default: every target and every POT; `--smoke` narrows
//! to the pKVM allocator minus the known solver-unknown outlier POT
//! `alloc_contig`, keeping the step CI-sized — every other target has
//! multi-minute POTs on a single core).

use std::time::Instant;

use tpot_bench::report::{
    int, merged_stats, num, outcomes_match, peak_rss_kb, s, stats_fields, status_key, BenchReport,
    TargetReport,
};
use tpot_engine::PotResult;
use tpot_obs::json::Value;
use tpot_targets::all_targets;

fn main() {
    let mut select: Vec<String> = Vec::new();
    let mut skip_pots: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut out = "BENCH_PR2.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--skip-pot" => skip_pots.extend(args.next()),
            "--out" => out = args.next().unwrap_or(out),
            _ => select.push(a),
        }
    }
    if smoke {
        if select.is_empty() {
            select = vec!["pkvm".into()];
        }
        // `spec__alloc_contig` hits a solver-unknown after ~13 min of
        // search (a pre-existing solver limitation; its query is captured
        // as a corpus artifact by the tpot-obs slow-query watchdog — see
        // crates/solver/tests/corpus/slow/); it would dominate a CI smoke
        // run.
        skip_pots.push("alloc_contig".into());
    }

    let mut report = BenchReport::new("bench_pr2");
    report.meta("smoke", Value::Bool(smoke));

    let mut all_match = true;
    let mut tot_forks = 0u64;
    let mut tot_shared = 0u64;
    let mut tot_copied = 0u64;
    for t in all_targets() {
        if !select.is_empty()
            && !select
                .iter()
                .any(|sel| t.name.to_lowercase().contains(&sel.to_lowercase()))
        {
            continue;
        }
        let v = t.verifier().expect("target compiles");
        let pots: Vec<String> = v
            .module
            .pot_names()
            .into_iter()
            .filter(|p| !skip_pots.iter().any(|f| p.contains(f.as_str())))
            .collect();
        if pots.is_empty() {
            continue;
        }
        let t0 = Instant::now();
        let seq: Vec<PotResult> = pots.iter().map(|p| v.verify_pot(p)).collect();
        let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let par = v.verify(&tpot_engine::VerifyOptions::new().pots(pots.iter().cloned()));
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
        let matches = outcomes_match(&seq, &par);
        let stats = merged_stats(&seq);
        let shared = stats.fork_bytes_shared;
        let copied = stats.fork_bytes_copied;
        println!(
            "{}: {} POTs, seq {:.0} ms, par {:.0} ms, {} forks \
             (shared {} KiB, copied {} KiB, {:.1}% shared), live peak {}, \
             outcomes match: {}",
            t.name,
            seq.len(),
            sequential_ms,
            parallel_ms,
            stats.forks,
            shared / 1024,
            copied / 1024,
            100.0 * shared as f64 / ((shared + copied).max(1)) as f64,
            stats.live_peak,
            matches
        );
        let mut row = TargetReport::new(t.name);
        row.field("pots", int(seq.len() as u64));
        row.field(
            "outcomes",
            Value::Obj(
                seq.iter()
                    .map(|r| (r.pot.clone(), s(status_key(&r.status))))
                    .collect(),
            ),
        );
        row.field("sequential_ms", num(sequential_ms));
        row.field("parallel_ms", num(parallel_ms));
        row.field("outcomes_match", Value::Bool(matches));
        row.field(
            "fork_shared_fraction",
            num(shared as f64 / ((shared + copied).max(1)) as f64),
        );
        row.field("peak_rss_kb", int(peak_rss_kb()));
        row.fields.extend(stats_fields(&stats));
        report.targets.push(row);
        all_match &= matches;
        tot_forks += stats.forks;
        tot_shared += shared;
        tot_copied += copied;
    }

    if report.targets.is_empty() {
        eprintln!("bench_pr2: no target matches {select:?}; nothing measured");
        std::process::exit(2);
    }

    report.summary("all_outcomes_match", Value::Bool(all_match));
    report.summary("total_forks", int(tot_forks));
    report.summary("total_fork_bytes_shared", int(tot_shared));
    report.summary("total_fork_bytes_copied", int(tot_copied));
    report.summary("peak_rss_kb", int(peak_rss_kb()));
    report.write(&out).expect("write results");
    let _ = tpot_obs::flush();
    println!("wrote {out}");
    assert!(all_match, "sequential and parallel outcomes diverged");
}
