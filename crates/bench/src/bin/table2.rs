//! Table 2: the eight specification primitives, with engine support status
//! (each row is exercised by the test suite / targets).

fn main() {
    println!("Table 2: TPot's specification primitives (paper §4.1)");
    println!("{:-<100}", "");
    let rows = [
        (
            "1",
            "any(var_type, var_name)",
            "General",
            "Defines a symbolic variable",
        ),
        (
            "2",
            "assume(cond_expr)",
            "General",
            "Introduces an assumption (preconditions)",
        ),
        (
            "3",
            "assert(cond_expr)",
            "General",
            "Checks cond_expr (postconditions)",
        ),
        (
            "4",
            "points_to(ptr, typ, name)",
            "Heap",
            "ptr names an object of sizeof(typ) bytes",
        ),
        (
            "5",
            "names_obj(ptr, typ)",
            "Heap",
            "points_to with the stringified pointer as name",
        ),
        (
            "6",
            "names_obj_forall(ptr_f, typ)",
            "Heap",
            "for all i: ptr_f(i) is NULL or names \"ptr_f!i\"",
        ),
        (
            "7",
            "forall_elem(arr, cond, ...)",
            "Quantified",
            "cond holds for every element of arr",
        ),
        (
            "8",
            "names_obj_forall_cond(f, typ, c)",
            "Quantified",
            "names_obj_forall + condition c per object",
        ),
    ];
    for (n, api, group, desc) in rows {
        println!("{n}  {api:<36} {group:<11} {desc}");
    }
    println!();
    println!("All eight are implemented by tpot-engine (interp::exec_builtin) and");
    println!("exercised by the six evaluation targets (crates/targets).");
}
