//! Minimal loop-invariant + forall_elem debugging harness.

use tpot_engine::{PotStatus, Verifier};

fn run(name: &str, src: &str, pot: &str) {
    let m = tpot_ir::lower(&tpot_cfront::compile(src).unwrap()).unwrap();
    let v = Verifier::new(m);
    let t0 = std::time::Instant::now();
    let r = v.verify_pot(pot);
    let status = match &r.status {
        PotStatus::Proved => "PROVED".to_string(),
        PotStatus::Failed(vs) => format!("FAILED: {}", vs[0]),
        PotStatus::Error(e) => format!("ERROR: {e}"),
    };
    println!("[{name}] {pot}: {status} in {:?}", t0.elapsed());
}

fn main() {
    // Step 1: loop with invariant, concrete global array, assert one byte.
    run(
        "concrete-byte",
        r#"
char buf[8];
int zero_upto(char *p, unsigned long j, unsigned long bound) {
  if (j >= bound) return 1;
  return *p == 0;
}
int loopinv__z(unsigned long *ip) {
  return *ip < 8 && forall_elem(buf, &zero_upto, *ip);
}
void clear(void) {
  unsigned long i = 0;
  while (i < 8) {
    __tpot_inv(&loopinv__z, &i, &i, sizeof(unsigned long), buf, 8);
    buf[i] = 0;
    i = i + 1;
  }
}
void spec__clear_one(void) {
  clear();
  assert(buf[3] == 0);
}
"#,
        "spec__clear_one",
    );
    // Step 1.5: heap-named object, symbolic window (the pKVM shape).
    run(
        "heap-window",
        r#"
unsigned long base;
unsigned long cur;
int inv__b(void) {
  return names_obj((char *)base, char[16]) && cur >= base && cur <= base + 12;
}
int zero_upto(char *p, unsigned long j, unsigned long bound) {
  if (j >= bound) return 1;
  return *p == 0;
}
int range_zero(long i, long start, long stop) {
  if (i < start || i >= stop) return 1;
  return ((char *)base)[i] == 0;
}
int loopinv__z(unsigned long *ip, unsigned long *top) {
  return *ip < 4 && forall_elem((char *)(*top), &zero_upto, *ip);
}
void clear4(unsigned long to) {
  unsigned long i = 0;
  while (i < 4) {
    __tpot_inv(&loopinv__z, &i, &to, &i, sizeof(unsigned long), to, 4);
    *(char *)(to + i) = 0;
    i = i + 1;
  }
}
void spec__window(void) {
  unsigned long prev = cur;
  clear4(cur);
  assert(forall_elem((char *)base, &range_zero,
         (long)(prev - base), (long)(prev - base) + 4));
}
"#,
        "spec__window",
    );
    // Step 2: same but assert via forall_elem with a symbolic skolem.
    run(
        "forall-assert",
        r#"
char buf[8];
int zero_upto(char *p, unsigned long j, unsigned long bound) {
  if (j >= bound) return 1;
  return *p == 0;
}
int all_zero(long i) {
  if (i < 0 || i >= 8) return 1;
  return buf[i] == 0;
}
int loopinv__z(unsigned long *ip) {
  return *ip < 8 && forall_elem(buf, &zero_upto, *ip);
}
void clear(void) {
  unsigned long i = 0;
  while (i < 8) {
    __tpot_inv(&loopinv__z, &i, &i, sizeof(unsigned long), buf, 8);
    buf[i] = 0;
    i = i + 1;
  }
}
void spec__clear_all(void) {
  clear();
  assert(forall_elem(buf, &all_zero));
}
"#,
        "spec__clear_all",
    );
}
// Appended: heap-named object with a symbolic window, mirroring pKVM.
