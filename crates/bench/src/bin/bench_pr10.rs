//! PR 10 harness: verification-as-a-service acceptance, written to
//! `BENCH_PR10.json` in the unified `tpot-bench/v1` schema.
//!
//! Drives an in-process `tpotd` over real HTTP through three phases on the
//! pKVM smoke subset (`spec__nr_pages`, `spec__init`):
//!
//! 1. **Cold** — empty cache directory; every POT must be engine-run
//!    (`solved`), populating both the persistent query cache and the
//!    POT-outcome table.
//! 2. **Warm** — the identical submission again, same daemon; every POT
//!    must come back `cached` (POT-table hit, no engine run), the cached
//!    share must be ≥ 90%, and the end-to-end service time must beat the
//!    cold run by ≥ 10× (the ISSUE acceptance bar; in practice it is
//!    orders of magnitude).
//! 3. **Edit one function** — a textual edit inside
//!    `hyp_early_alloc_nr_pages` (`+ 0` appended to the return
//!    expression: different TIR, same truth). Only `spec__nr_pages` has
//!    that function in its cone-of-influence, so it alone may re-verify;
//!    `spec__init` must stay `cached`, and the response must name exactly
//!    the edited function in `changed_functions`.
//!
//! A final restart phase stops the daemon, starts a fresh one on the same
//! cache directory, and re-submits the edited source: everything must now
//! be `cached` (on-disk persistence across process generations).
//!
//! Usage: `bench_pr10 [--out PATH]` (the phases are all sub-second; there
//! is no `--smoke` tier).

use std::time::Instant;

use tpot_api::{http, CacheProvenance, PotStatusWire, VerifyRequest, VerifyResponse};
use tpot_bench::report::{int, num, peak_rss_kb, s, BenchReport, TargetReport};
use tpot_daemon::DaemonConfig;
use tpot_obs::json::{self, Value};

const SMOKE_POTS: [&str; 2] = ["spec__nr_pages", "spec__init"];
const EDIT_FROM: &str = "return (cur - base) / PAGE_SIZE;";
const EDIT_TO: &str = "return (cur - base) / PAGE_SIZE + 0;";

fn post_verify(addr: &str, req: &VerifyRequest) -> VerifyResponse {
    let (status, body) =
        http::post(addr, "/v1/verify", &req.to_json().render()).expect("daemon reachable");
    assert_eq!(status, 200, "daemon error: {body}");
    VerifyResponse::from_json(&json::parse(&body).expect("valid JSON")).expect("valid response")
}

fn provenance_counts(resp: &VerifyResponse) -> (u64, u64, u64) {
    let count = |p: CacheProvenance| resp.pots.iter().filter(|o| o.provenance == p).count() as u64;
    (
        count(CacheProvenance::Cached),
        count(CacheProvenance::Replayed),
        count(CacheProvenance::Solved),
    )
}

fn phase_row(name: &str, wall_ms: f64, resp: &VerifyResponse) -> Value {
    let (cached, replayed, solved) = provenance_counts(resp);
    Value::Obj(vec![
        ("phase".into(), s(name)),
        ("wall_ms".into(), num(wall_ms)),
        ("service_ms".into(), num(resp.duration_ms)),
        ("cached".into(), int(cached)),
        ("replayed".into(), int(replayed)),
        ("solved".into(), int(solved)),
        (
            "changed_functions".into(),
            Value::Arr(
                resp.changed_functions
                    .iter()
                    .map(|f| s(f.clone()))
                    .collect(),
            ),
        ),
        ("cache".into(), resp.cache.to_json()),
    ])
}

fn main() {
    let mut out = "BENCH_PR10.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or(out),
            other => {
                eprintln!("bench_pr10: unknown arg {other:?}");
                std::process::exit(2)
            }
        }
    }

    let cache_dir = std::env::temp_dir().join(format!("tpot_bench_pr10_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let target = tpot_targets::target("pkvm").expect("bundled pKVM target");
    let source = target.full_source();
    assert!(
        source.contains(EDIT_FROM),
        "edit anchor {EDIT_FROM:?} not found in the pKVM source"
    );
    let edited = source.replace(EDIT_FROM, EDIT_TO);
    let request = |src: &str| {
        VerifyRequest::for_source(src)
            .with_pots(SMOKE_POTS)
            .with_label("bench_pr10")
    };

    let mut report = BenchReport::new("bench_pr10");
    report.meta(
        "pots",
        Value::Arr(SMOKE_POTS.iter().map(|p| s(*p)).collect()),
    );
    report.meta("edit", s(format!("{EDIT_FROM:?} -> {EDIT_TO:?}")));

    let t0 = Instant::now();
    let handle = tpot_daemon::start(
        DaemonConfig::new()
            .addr("127.0.0.1:0")
            .cache_dir(&cache_dir),
    )
    .expect("daemon starts");
    let addr = handle.addr_string();
    let mut phases: Vec<Value> = Vec::new();

    // 1. Cold.
    let wall = Instant::now();
    let cold = post_verify(&addr, &request(&source));
    let cold_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert!(cold.error.is_none(), "{:?}", cold.error);
    assert!(cold.pots.iter().all(|p| p.status == PotStatusWire::Proved));
    let (cold_cached, _, _) = provenance_counts(&cold);
    assert_eq!(cold_cached, 0, "cold run may not hit the POT table");
    phases.push(phase_row("cold", cold_ms, &cold));
    println!("cold: {cold_ms:.1}ms, {} POTs solved", cold.pots.len());

    // 2. Warm.
    let wall = Instant::now();
    let warm = post_verify(&addr, &request(&source));
    let warm_ms = wall.elapsed().as_secs_f64() * 1e3;
    let (warm_cached, _, _) = provenance_counts(&warm);
    let cached_share = warm_cached as f64 / warm.pots.len() as f64;
    let speedup = cold_ms / warm_ms.max(1e-6);
    phases.push(phase_row("warm", warm_ms, &warm));
    println!(
        "warm: {warm_ms:.1}ms ({speedup:.0}x vs cold), {warm_cached}/{} cached",
        warm.pots.len()
    );

    // 3. Edit one function.
    let wall = Instant::now();
    let edit = post_verify(&addr, &request(&edited));
    let edit_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert!(edit.pots.iter().all(|p| p.status == PotStatusWire::Proved));
    let by_name: std::collections::HashMap<&str, CacheProvenance> = edit
        .pots
        .iter()
        .map(|p| (p.pot.as_str(), p.provenance))
        .collect();
    let edit_isolated = by_name["spec__nr_pages"] != CacheProvenance::Cached
        && by_name["spec__init"] == CacheProvenance::Cached;
    let diff_exact = edit.changed_functions == vec!["hyp_early_alloc_nr_pages".to_string()];
    phases.push(phase_row("edit_one_function", edit_ms, &edit));
    println!(
        "edit: {edit_ms:.1}ms, changed {:?}, nr_pages {} / init {}",
        edit.changed_functions,
        by_name["spec__nr_pages"].as_str(),
        by_name["spec__init"].as_str()
    );
    handle.shutdown();

    // 4. Restart on the same cache directory: all outcomes persist.
    let handle = tpot_daemon::start(
        DaemonConfig::new()
            .addr("127.0.0.1:0")
            .cache_dir(&cache_dir),
    )
    .expect("daemon restarts");
    let wall = Instant::now();
    let restart = post_verify(&handle.addr_string(), &request(&edited));
    let restart_ms = wall.elapsed().as_secs_f64() * 1e3;
    let (restart_cached, _, _) = provenance_counts(&restart);
    let restart_full = restart_cached == restart.pots.len() as u64;
    phases.push(phase_row("restart", restart_ms, &restart));
    println!(
        "restart: {restart_ms:.1}ms, {restart_cached}/{} cached",
        restart.pots.len()
    );
    handle.shutdown();

    let mut row = TargetReport::new(target.name);
    row.field("phases", Value::Arr(phases));
    report.targets.push(row);

    report.summary("cold_ms", num(cold_ms));
    report.summary("warm_ms", num(warm_ms));
    report.summary("warm_speedup", num(speedup));
    report.summary("warm_cached_share", num(cached_share));
    report.summary("edit_isolated", Value::Bool(edit_isolated));
    report.summary("diff_exact", Value::Bool(diff_exact));
    report.summary("restart_fully_cached", Value::Bool(restart_full));
    report.summary("wall_ms", num(t0.elapsed().as_secs_f64() * 1e3));
    report.summary("peak_rss_kb", int(peak_rss_kb()));
    report.embed_metrics();
    report.write(&out).expect("write results");
    println!(
        "wrote {out} (warm {speedup:.0}x, cached share {:.0}%, edit isolated {edit_isolated})",
        cached_share * 100.0
    );
    let _ = std::fs::remove_dir_all(&cache_dir);

    assert!(
        speedup >= 10.0,
        "warm re-verify must be >=10x faster than cold (got {speedup:.1}x)"
    );
    assert!(
        cached_share >= 0.9,
        "warm run must serve >=90% of POTs from the POT table (got {:.0}%)",
        cached_share * 100.0
    );
    assert!(
        edit_isolated,
        "editing hyp_early_alloc_nr_pages must re-verify only spec__nr_pages"
    );
    assert!(
        diff_exact,
        "changed_functions must name exactly the edited function, got {:?}",
        edit.changed_functions
    );
    assert!(restart_full, "restart must serve everything from disk");
}
