//! PR 6 harness: solver inprocessing ablation, written to `BENCH_PR6.json`
//! in the unified `tpot-bench/v1` schema.
//!
//! Three in-process phases over the same POTs, same module, same solver
//! portfolio:
//!
//! 1. **Ablation** — `TPOT_INPROCESS=0` semantics (`inprocess: Some(false)`
//!    via `tpot_obs::configure`), incremental sessions on. The pre-PR-6
//!    solver: activity-only clause reduction, no variable elimination, no
//!    subsumption, no vivification.
//! 2. **Inprocessing** — `inprocess: Some(true)`, incremental sessions on,
//!    span collection forced so the reported wall-clock is the traced one.
//!    This is the production default; the wall-clock ratio of phase 1 to
//!    phase 2 is the headline speedup.
//! 3. **One-shot** — inprocessing on, `incremental: false`. Supplies the
//!    `terms_shipped` baseline for the re-blast ratio and the strict
//!    incremental/one-shot parity check, proving inprocessing (which
//!    eliminates variables out from under the bit-blast cache) did not
//!    break PR 5's session reuse.
//!
//! The ablation runs under a deterministic conflict budget
//! (`sat_conflict_limit`), because without inprocessing the
//! `spec__alloc_contig` feasibility query diverges: the budget turns
//! "never comes back" into a measurable, reproducible give-up point.
//! Whenever the ablation hits the budget the reported speedup is a
//! *lower bound* (the uncapped ablation is strictly slower), and the
//! harness records `ablation_capped: true`.
//!
//! The harness asserts the invariants PR 6 promises:
//!
//! - **Speedup**: phase 1 / phase 2 wall-clock ≥ 2× on the full pKVM mix
//!   (`alloc_contig` included; the assert is skipped whenever any POT is
//!   dropped — `--smoke` or `--skip-pot` — because those drop the only
//!   POTs slow enough to show a solver-bound win; the ratio is still
//!   reported as `speedup_ok`).
//! - **Parity**: phases 2 and 3 report identical per-POT statuses; phase 1
//!   may differ from phase 2 only where the ablation returned a
//!   solver-unknown that inprocessing now decides (recorded as `improved`
//!   — `spec__alloc_contig` is the known instance).
//! - **Reuse preserved**: sessions still hit and the re-blast ratio
//!   (incremental `session_reblasted_terms` over one-shot `terms_shipped`)
//!   stays below 0.5 with elimination running between solves.
//!
//! Usage: `bench_pr6 [target-fragment ...] [--skip-pot FRAG] [--smoke]
//! [--out PATH]` (default: the whole pKVM allocator, `alloc_contig`
//! included; `--smoke` skips the ~1-minute `alloc_page` walkthrough and
//! the several-minute `alloc_contig` solve for CI).

use std::time::Instant;

use tpot_bench::report::{
    int, merged_stats, num, outcomes_match, peak_rss_kb, s, status_key, BenchReport, TargetReport,
};
use tpot_engine::{EngineConfig, PotResult, Verifier};
use tpot_obs::json::Value;
use tpot_obs::ObsConfig;
use tpot_targets::all_targets;

/// Per-solve conflict budget for the ablation phase. Chosen well above
/// what any query the inprocessing solver decides ever needs, so a
/// budget give-up certifies genuine divergence rather than a tight cap;
/// at the container's observed conflict rate it amounts to several
/// times the inprocessing phase's total wall-clock.
const ABLATION_CONFLICT_CAP: u64 = 4_000_000;

fn run_phase(v: &Verifier, pots: &[String]) -> (Vec<PotResult>, f64) {
    let t0 = Instant::now();
    let results = pots.iter().map(|p| v.verify_pot(p)).collect();
    (results, t0.elapsed().as_secs_f64() * 1e3)
}

/// Ablation-vs-inprocessing outcome comparison. Statuses must match
/// per-POT, except that an ablation solver-unknown (`error:…unknown…`)
/// decided under inprocessing counts as an improvement, not a mismatch.
/// Returns `(parity, improved)`.
fn ablation_outcomes(ablation: &[PotResult], inproc: &[PotResult]) -> (bool, Vec<String>) {
    if ablation.len() != inproc.len() {
        return (false, Vec::new());
    }
    let mut improved = Vec::new();
    for (a, b) in ablation.iter().zip(inproc.iter()) {
        if a.pot != b.pot {
            return (false, improved);
        }
        let (ka, kb) = (status_key(&a.status), status_key(&b.status));
        if ka == kb {
            continue;
        }
        if ka.starts_with("error:") && ka.contains("unknown") && !kb.starts_with("error:") {
            improved.push(a.pot.clone());
        } else {
            return (false, improved);
        }
    }
    (true, improved)
}

fn main() {
    let mut select: Vec<String> = Vec::new();
    let mut skip_pots: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut out = "BENCH_PR6.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--skip-pot" => skip_pots.extend(args.next()),
            "--smoke" => smoke = true,
            "--out" => out = args.next().unwrap_or(out),
            _ => select.push(a),
        }
    }
    if select.is_empty() {
        select = vec!["pkvm".into()];
    }
    if smoke {
        skip_pots.push("alloc_page".into());
        skip_pots.push("alloc_contig".into());
    }

    let mut report = BenchReport::new("bench_pr6");
    report.meta("smoke", Value::Bool(smoke));
    report.meta(
        "skip_pots",
        Value::Arr(skip_pots.iter().map(|p| s(p.clone())).collect()),
    );

    let mut all_parity = true;
    let mut any_capped = false;
    let mut all_improved: Vec<String> = Vec::new();
    let mut tot_ablation_ms = 0.0;
    let mut tot_inproc_ms = 0.0;
    let mut tot_hits = 0u64;
    let mut tot_misses = 0u64;
    let mut tot_reblasted = 0u64;
    let mut tot_oneshot_shipped = 0u64;
    for t in all_targets() {
        if !select
            .iter()
            .any(|sel| t.name.to_lowercase().contains(&sel.to_lowercase()))
        {
            continue;
        }
        let module = t.verifier().expect("target compiles").module;
        let pots: Vec<String> = module
            .pot_names()
            .into_iter()
            .filter(|p| !skip_pots.iter().any(|f| p.contains(f.as_str())))
            .collect();
        if pots.is_empty() {
            continue;
        }

        // Phase 1: inprocessing off (the TPOT_INPROCESS=0 ablation),
        // incremental sessions on. Span collection forced, same as phase
        // 2, so the two wall-clocks carry identical tracing overhead. The
        // conflict budget bounds the divergent `alloc_contig` baseline;
        // see the module docs.
        tpot_obs::configure(ObsConfig {
            inprocess: Some(false),
            collect_spans: true,
            sat_conflict_limit: Some(ABLATION_CONFLICT_CAP),
            ..ObsConfig::default()
        });
        tpot_obs::take_events();
        let inc_cfg = EngineConfig {
            incremental: true,
            ..EngineConfig::default()
        };
        let v1 = Verifier::with_config(module.clone(), inc_cfg.clone());
        let (ablation, ablation_ms) = run_phase(&v1, &pots);

        // Phase 2: inprocessing on (production default), incremental
        // sessions on, span collection forced so the wall-clock below is
        // the traced one.
        tpot_obs::configure(ObsConfig {
            inprocess: Some(true),
            collect_spans: true,
            ..ObsConfig::default()
        });
        let v2 = Verifier::with_config(module.clone(), inc_cfg);
        let (inproc, inproc_ms) = run_phase(&v2, &pots);
        let events = tpot_obs::take_events();
        let inproc_stats = merged_stats(&inproc);

        // Phase 3: inprocessing on, one-shot (sessions off) — the
        // terms-shipped baseline for the re-blast ratio and the strict
        // incremental/one-shot parity witness.
        tpot_obs::configure(ObsConfig {
            inprocess: Some(true),
            ..ObsConfig::default()
        });
        let oneshot_cfg = EngineConfig {
            incremental: false,
            ..EngineConfig::default()
        };
        let v3 = Verifier::with_config(module, oneshot_cfg);
        let (oneshot, oneshot_ms) = run_phase(&v3, &pots);
        let oneshot_stats = merged_stats(&oneshot);
        tpot_obs::configure(ObsConfig::default());

        let (abl_parity, improved) = ablation_outcomes(&ablation, &inproc);
        let capped = ablation
            .iter()
            .any(|r| status_key(&r.status).contains("unknown"));
        let session_parity = outcomes_match(&inproc, &oneshot);
        let parity = abl_parity && session_parity;
        let speedup = ablation_ms / inproc_ms.max(1e-9);
        let checks = inproc_stats.session_hits + inproc_stats.session_misses;
        let hit_rate = inproc_stats.session_hits as f64 / checks.max(1) as f64;
        let reblast_ratio =
            inproc_stats.session_reblasted_terms as f64 / oneshot_stats.terms_shipped.max(1) as f64;
        println!(
            "{}: {} POTs, ablation {:.0} ms, inprocessing {:.0} ms traced \
             ({:.2}x, {} vars eliminated, {} clauses subsumed, {} lits \
             vivified), one-shot {:.0} ms, {:.1}% session hit rate, re-blast \
             ratio {:.3}, improved: {:?}, parity: {}",
            t.name,
            pots.len(),
            ablation_ms,
            inproc_ms,
            speedup,
            inproc_stats.sat_eliminated_vars,
            inproc_stats.sat_subsumed,
            inproc_stats.sat_vivified_lits,
            oneshot_ms,
            100.0 * hit_rate,
            reblast_ratio,
            improved,
            parity
        );

        let mut row = TargetReport::new(t.name);
        row.field("pots", int(pots.len() as u64));
        row.field(
            "outcomes",
            Value::Obj(
                inproc
                    .iter()
                    .map(|r| (r.pot.clone(), s(status_key(&r.status))))
                    .collect(),
            ),
        );
        row.field(
            "ablation_outcomes",
            Value::Obj(
                ablation
                    .iter()
                    .map(|r| (r.pot.clone(), s(status_key(&r.status))))
                    .collect(),
            ),
        );
        row.field("parity", Value::Bool(parity));
        row.field("ablation_capped", Value::Bool(capped));
        row.field(
            "improved",
            Value::Arr(improved.iter().map(|p| s(p.clone())).collect()),
        );
        row.field("ablation_ms", num(ablation_ms));
        row.field("inprocess_traced_ms", num(inproc_ms));
        row.field("oneshot_ms", num(oneshot_ms));
        row.field("speedup", num(speedup));
        row.field("trace_events", int(events.len() as u64));
        row.field("sat_eliminated_vars", int(inproc_stats.sat_eliminated_vars));
        row.field("sat_subsumed", int(inproc_stats.sat_subsumed));
        row.field("sat_vivified_lits", int(inproc_stats.sat_vivified_lits));
        row.field("oneshot_terms_shipped", int(oneshot_stats.terms_shipped));
        row.field(
            "session_reblasted_terms",
            int(inproc_stats.session_reblasted_terms),
        );
        row.field("session_hit_rate", num(hit_rate));
        row.field("reblast_ratio", num(reblast_ratio));
        report.targets.push(row);

        all_parity &= parity;
        any_capped |= capped;
        all_improved.extend(improved);
        tot_ablation_ms += ablation_ms;
        tot_inproc_ms += inproc_ms;
        tot_hits += inproc_stats.session_hits;
        tot_misses += inproc_stats.session_misses;
        tot_reblasted += inproc_stats.session_reblasted_terms;
        tot_oneshot_shipped += oneshot_stats.terms_shipped;
    }

    if report.targets.is_empty() {
        eprintln!("bench_pr6: no target matches {select:?}; nothing measured");
        std::process::exit(2);
    }

    let speedup = tot_ablation_ms / tot_inproc_ms.max(1e-9);
    let hit_rate = tot_hits as f64 / (tot_hits + tot_misses).max(1) as f64;
    let reblast_ratio = tot_reblasted as f64 / tot_oneshot_shipped.max(1) as f64;
    let reblast_ok = reblast_ratio < 0.5;
    report.summary("parity", Value::Bool(all_parity));
    report.summary(
        "improved",
        Value::Arr(all_improved.iter().map(|p| s(p.clone())).collect()),
    );
    report.summary("ablation_ms", num(tot_ablation_ms));
    report.summary("ablation_capped", Value::Bool(any_capped));
    report.summary("ablation_conflict_cap", int(ABLATION_CONFLICT_CAP));
    report.summary("inprocess_traced_ms", num(tot_inproc_ms));
    report.summary("speedup", num(speedup));
    report.summary("speedup_is_lower_bound", Value::Bool(any_capped));
    report.summary("speedup_ok", Value::Bool(speedup >= 2.0));
    report.summary("session_hit_rate", num(hit_rate));
    report.summary("session_reblasted_terms", int(tot_reblasted));
    report.summary("oneshot_terms_shipped", int(tot_oneshot_shipped));
    report.summary("reblast_ratio", num(reblast_ratio));
    report.summary("reblast_ok", Value::Bool(reblast_ok));
    report.summary("peak_rss_kb", int(peak_rss_kb()));
    report.embed_metrics();
    report.write(&out).expect("write results");
    println!(
        "wrote {out} (speedup {speedup:.2}x, improved {:?})",
        all_improved
    );

    assert!(
        all_parity,
        "inprocessing changed a decided verification outcome"
    );
    // The 2x target needs the solver-bound POTs; any skip (`--smoke` or
    // `--skip-pot`) drops them — report the ratio without asserting it,
    // the full run enforces.
    if skip_pots.is_empty() {
        assert!(
            speedup >= 2.0,
            "inprocessing speedup {speedup:.2}x is below the 2x target \
             ({tot_ablation_ms:.0} ms ablation vs {tot_inproc_ms:.0} ms)"
        );
    }
    assert!(tot_hits > 0, "no path query ever reused a solve session");
    assert!(
        reblast_ok,
        "incremental re-blasted {tot_reblasted} terms vs {tot_oneshot_shipped} \
         shipped one-shot (ratio {reblast_ratio:.3}, need < 0.5)"
    );
}
