//! PR3 harness: deep differential-fuzz run over the solver stack and the
//! symbolic engine (see DESIGN.md §5).
//!
//! Runs every fuzz mode (grounded brute-force differential, slice-vs-full,
//! LIA-vs-BV, metamorphic, state fork-vs-replay) at a fixed seed and
//! records per-mode iteration and discrepancy counts. The run must end
//! with zero discrepancies; any repro files are written to `fuzz-failures/`.
//!
//! Usage: `bench_pr3 [--smoke] [--iters N] [--seed S] [--out PATH]`
//! (default: 10000 iterations, seed 42, BENCH_PR3.json; `--smoke` drops to
//! 1000 iterations for CI.)

use std::process::exit;

use tpot_fuzz::runner::{report_json, run, RunConfig};

fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let mut iters: u64 = 10_000;
    let mut seed: u64 = 42;
    let mut out = String::from("BENCH_PR3.json");
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => {
                    eprintln!("--iters needs a number");
                    exit(2);
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs a number");
                    exit(2);
                }
            },
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("--out needs a path");
                    exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bench_pr3 [--smoke] [--iters N] [--seed S] [--out PATH]");
                exit(2);
            }
        }
    }
    if smoke {
        iters = iters.min(1000);
    }

    eprintln!("bench_pr3: {iters} iterations, seed {seed}");
    let cfg = RunConfig::new(iters, seed);
    let report = run(&cfg);

    for (m, s) in &report.stats {
        eprintln!(
            "  {:<12} runs {:>6}  sat {:>6}  unsat {:>6}  skipped {:>4}  discrepancies {}",
            m.name(),
            s.runs,
            s.sat,
            s.unsat,
            s.skipped,
            s.discrepancies
        );
    }

    let extra = [
        ("smoke", smoke.to_string()),
        ("peak_rss_kb", peak_rss_kb().to_string()),
        (
            "iters_per_sec",
            format!(
                "{:.1}",
                report.iters as f64 / (report.elapsed_ms / 1000.0).max(1e-9)
            ),
        ),
    ];
    let json = report_json(&report, &extra);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    }
    eprintln!("wrote {out}");

    let total = report.total_discrepancies();
    if total > 0 {
        eprintln!("bench_pr3: {total} discrepancies (repros under fuzz-failures/)");
        exit(1);
    }
    eprintln!(
        "bench_pr3: OK ({} iterations, {:.1} s, 0 discrepancies)",
        report.iters,
        report.elapsed_ms / 1000.0
    );
}
