//! PR3 harness: deep differential-fuzz run over the solver stack and the
//! symbolic engine (see DESIGN.md §5), written to `BENCH_PR3.json` in the
//! unified `tpot-bench/v1` schema (rows are fuzz modes, not verification
//! targets).
//!
//! Runs every fuzz mode (grounded brute-force differential, slice-vs-full,
//! LIA-vs-BV, metamorphic, state fork-vs-replay) at a fixed seed and
//! records per-mode iteration and discrepancy counts. The run must end
//! with zero discrepancies; any repro files are written to `fuzz-failures/`.
//!
//! Usage: `bench_pr3 [--smoke] [--iters N] [--seed S] [--out PATH]`
//! (default: 10000 iterations, seed 42, BENCH_PR3.json; `--smoke` drops to
//! 1000 iterations for CI.)

use std::process::exit;

use tpot_bench::report::{int, num, peak_rss_kb, s, BenchReport, TargetReport};
use tpot_fuzz::runner::{run, RunConfig};
use tpot_obs::json::Value;

fn main() {
    let mut iters: u64 = 10_000;
    let mut seed: u64 = 42;
    let mut out = String::from("BENCH_PR3.json");
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => {
                    eprintln!("--iters needs a number");
                    exit(2);
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs a number");
                    exit(2);
                }
            },
            "--out" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("--out needs a path");
                    exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bench_pr3 [--smoke] [--iters N] [--seed S] [--out PATH]");
                exit(2);
            }
        }
    }
    if smoke {
        iters = iters.min(1000);
    }

    eprintln!("bench_pr3: {iters} iterations, seed {seed}");
    let cfg = RunConfig::new(iters, seed);
    let fuzz = run(&cfg);

    let mut report = BenchReport::new("bench_pr3");
    report.meta("smoke", Value::Bool(smoke));
    report.meta("seed", int(fuzz.seed));
    report.meta("iters", int(fuzz.iters));

    for (m, st) in &fuzz.stats {
        eprintln!(
            "  {:<12} runs {:>6}  sat {:>6}  unsat {:>6}  skipped {:>4}  discrepancies {}",
            m.name(),
            st.runs,
            st.sat,
            st.unsat,
            st.skipped,
            st.discrepancies
        );
        let mut row = TargetReport::new(m.name());
        row.field("runs", int(st.runs));
        row.field("sat", int(st.sat));
        row.field("unsat", int(st.unsat));
        row.field("skipped", int(st.skipped));
        row.field("discrepancies", int(st.discrepancies));
        report.targets.push(row);
    }

    let total = fuzz.total_discrepancies();
    report.summary("discrepancies", int(total));
    report.summary(
        "discrepancy_detail",
        Value::Arr(
            fuzz.discrepancies
                .iter()
                .map(|d| {
                    Value::Obj(vec![
                        ("mode".to_string(), s(d.mode.name())),
                        ("iter".to_string(), int(d.iter)),
                        ("detail".to_string(), s(&d.detail)),
                        (
                            "repro".to_string(),
                            d.repro
                                .as_ref()
                                .map(|p| s(p.display().to_string()))
                                .unwrap_or(Value::Null),
                        ),
                    ])
                })
                .collect(),
        ),
    );
    report.summary("elapsed_ms", num(fuzz.elapsed_ms));
    report.summary(
        "iters_per_sec",
        num(fuzz.iters as f64 / (fuzz.elapsed_ms / 1000.0).max(1e-9)),
    );
    report.summary("peak_rss_kb", int(peak_rss_kb()));

    if let Err(e) = report.write(&out) {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    }
    let _ = tpot_obs::flush();
    eprintln!("wrote {out}");

    if total > 0 {
        eprintln!("bench_pr3: {total} discrepancies (repros under fuzz-failures/)");
        exit(1);
    }
    eprintln!(
        "bench_pr3: OK ({} iterations, {:.1} s, 0 discrepancies)",
        fuzz.iters,
        fuzz.elapsed_ms / 1000.0
    );
}
