//! PR 4 harness: observability parity and solver time-attribution
//! coverage, written to `BENCH_PR4.json` in the unified `tpot-bench/v1`
//! schema with the full `tpot-obs` metrics registry embedded.
//!
//! Two in-process phases over the same POTs:
//!
//! 1. **Baseline** — spans disabled (the production default). Records the
//!    per-POT outcomes and wall-clock.
//! 2. **Traced** — span collection forced on ([`ObsConfig::collect_spans`],
//!    no file sinks). Records outcomes, wall-clock, and the raw events.
//!
//! The harness then asserts the two invariants PR 4 promises:
//!
//! - **Parity**: tracing never changes a verification outcome (same POTs,
//!   same statuses in both phases).
//! - **Attribution coverage**: the matched `solver`/`query` spans account
//!   for ≥ 95% of the solver wall time the engine's own
//!   [`Stats`](tpot_engine::Stats) timers
//!   measured (the span wraps serialization + solve, the stats timer only
//!   the solve, so coverage may exceed 100%).
//!
//! Usage: `bench_pr4 [target-fragment ...] [--skip-pot FRAG] [--out PATH]`
//! (default: the pKVM allocator minus the known solver-unknown outlier
//! `alloc_contig`; see crates/solver/tests/corpus/slow/).

use std::time::Instant;

use tpot_bench::report::{
    int, merged_stats, num, outcomes_match, peak_rss_kb, s, status_key, BenchReport, TargetReport,
};
use tpot_engine::PotResult;
use tpot_obs::json::Value;
use tpot_obs::{ObsConfig, Phase};
use tpot_targets::all_targets;

/// Sums the durations (µs) of matched Begin/End pairs with category
/// `solver` and name `query`, via a per-thread stack (the per-thread event
/// order is the collection order, so pairs nest properly per tid).
fn solver_span_us(events: &[tpot_obs::Event]) -> u64 {
    use std::collections::HashMap;
    let mut stacks: HashMap<u64, Vec<(&str, &str, u64)>> = HashMap::new();
    let mut total = 0u64;
    for ev in events {
        match ev.phase {
            Phase::Begin => stacks
                .entry(ev.tid)
                .or_default()
                .push((ev.cat, &ev.name, ev.ts_us)),
            Phase::End => {
                if let Some((cat, name, t0)) = stacks.entry(ev.tid).or_default().pop() {
                    if cat == "solver" && name == "query" {
                        total += ev.ts_us.saturating_sub(t0);
                    }
                }
            }
            Phase::Instant => {}
        }
    }
    total
}

fn main() {
    let mut select: Vec<String> = Vec::new();
    let mut skip_pots: Vec<String> = vec!["alloc_contig".into()];
    let mut out = "BENCH_PR4.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--skip-pot" => skip_pots.extend(args.next()),
            "--out" => out = args.next().unwrap_or(out),
            _ => select.push(a),
        }
    }
    if select.is_empty() {
        select = vec!["pkvm".into()];
    }

    let mut report = BenchReport::new("bench_pr4");
    report.meta(
        "skip_pots",
        Value::Arr(skip_pots.iter().map(|p| s(p.clone())).collect()),
    );

    let mut all_parity = true;
    let mut tot_span_us = 0u64;
    let mut tot_measured_us = 0u64;
    for t in all_targets() {
        if !select
            .iter()
            .any(|sel| t.name.to_lowercase().contains(&sel.to_lowercase()))
        {
            continue;
        }
        let v = t.verifier().expect("target compiles");
        let pots: Vec<String> = v
            .module
            .pot_names()
            .into_iter()
            .filter(|p| !skip_pots.iter().any(|f| p.contains(f.as_str())))
            .collect();
        if pots.is_empty() {
            continue;
        }

        // Phase 1: spans off (the default; configure defensively in case a
        // TPOT_TRACE/TPOT_SPANS environment leaked in).
        tpot_obs::configure(ObsConfig::default());
        tpot_obs::take_events();
        let t0 = Instant::now();
        let base: Vec<PotResult> = pots.iter().map(|p| v.verify_pot(p)).collect();
        let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Phase 2: span collection forced on, no file sinks.
        tpot_obs::configure(ObsConfig {
            collect_spans: true,
            ..ObsConfig::default()
        });
        let t1 = Instant::now();
        let traced: Vec<PotResult> = pots.iter().map(|p| v.verify_pot(p)).collect();
        let traced_ms = t1.elapsed().as_secs_f64() * 1e3;
        let events = tpot_obs::take_events();
        tpot_obs::configure(ObsConfig::default());

        let parity = outcomes_match(&base, &traced);
        let stats = merged_stats(&traced);
        let span_us = solver_span_us(&events);
        let measured_us =
            (stats.simplify_time + stats.pointer_time + stats.branch_time + stats.assertion_time)
                .as_micros() as u64;
        let coverage = span_us as f64 / (measured_us.max(1)) as f64;
        println!(
            "{}: {} POTs, baseline {:.0} ms, traced {:.0} ms, {} events, \
             solver spans {:.1} ms vs measured {:.1} ms ({:.1}% coverage), \
             parity: {}",
            t.name,
            base.len(),
            baseline_ms,
            traced_ms,
            events.len(),
            span_us as f64 / 1e3,
            measured_us as f64 / 1e3,
            100.0 * coverage,
            parity
        );

        let mut row = TargetReport::new(t.name);
        row.field("pots", int(base.len() as u64));
        row.field(
            "outcomes",
            Value::Obj(
                base.iter()
                    .map(|r| (r.pot.clone(), s(status_key(&r.status))))
                    .collect(),
            ),
        );
        row.field("baseline_ms", num(baseline_ms));
        row.field("traced_ms", num(traced_ms));
        row.field(
            "tracing_overhead",
            num(traced_ms / baseline_ms.max(1e-9) - 1.0),
        );
        row.field("events", int(events.len() as u64));
        row.field("parity", Value::Bool(parity));
        row.field("solver_span_us", int(span_us));
        row.field("measured_solver_us", int(measured_us));
        row.field("solver_span_coverage", num(coverage));
        report.targets.push(row);

        all_parity &= parity;
        tot_span_us += span_us;
        tot_measured_us += measured_us;
    }

    if report.targets.is_empty() {
        eprintln!("bench_pr4: no target matches {select:?}; nothing measured");
        std::process::exit(2);
    }

    let coverage = tot_span_us as f64 / tot_measured_us.max(1) as f64;
    let coverage_ok = coverage >= 0.95;
    report.summary("parity", Value::Bool(all_parity));
    report.summary("solver_span_us", int(tot_span_us));
    report.summary("measured_solver_us", int(tot_measured_us));
    report.summary("solver_span_coverage", num(coverage));
    report.summary("coverage_ok", Value::Bool(coverage_ok));
    report.summary("peak_rss_kb", int(peak_rss_kb()));
    report.embed_metrics();
    report.write(&out).expect("write results");
    println!("wrote {out}");

    assert!(all_parity, "tracing changed a verification outcome");
    assert!(
        coverage_ok,
        "solver spans cover only {:.1}% of measured solver time",
        100.0 * coverage
    );
}
