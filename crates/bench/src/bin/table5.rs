//! Table 5: number of POTs and verification time per target.
//!
//! Runs every POT of the selected targets through the parallel driver
//! (`Verifier::verify` with auto job count — the paper's CI model: "TPot verifies
//! a component by running all POTs in parallel", with bounded workers and a
//! shared query cache), reporting Avg/Min/Max per-POT time, CI time (wall
//! clock for the parallel batch) and total CPU time.
//!
//! Usage: `table5 [target-fragment ...]` — default: the three small
//! targets; pass `all` for all six (long). `TPOT_JOBS` bounds the workers.

use std::time::Instant;

use tpot_bench::fmt_dur;
use tpot_targets::all_targets;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let select: Vec<String> = if args.is_empty() {
        vec!["pkvm".into(), "vigor".into(), "page table".into()]
    } else if args.iter().any(|a| a == "all") {
        all_targets()
            .iter()
            .map(|t| t.name.to_lowercase())
            .collect()
    } else {
        args
    };
    println!(
        "{:<22} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Target", "#POTs", "Avg", "Min", "Max", "CI time", "CPU time"
    );
    println!("{:-<80}", "");
    for t in all_targets() {
        if !select
            .iter()
            .any(|s| t.name.to_lowercase().contains(&s.to_lowercase()))
        {
            continue;
        }
        let verifier = t.verifier().expect("target compiles");
        let wall = Instant::now();
        let results = verifier.verify(&tpot_engine::VerifyOptions::new());
        let ci = wall.elapsed();
        let mut times = Vec::new();
        let mut all_proved = true;
        for r in &results {
            if !r.status.is_proved() {
                all_proved = false;
                eprintln!("  !! {}: {:?}", r.pot, r.status);
            }
            times.push(r.duration);
        }
        let cpu: std::time::Duration = times.iter().sum();
        let avg = cpu / times.len().max(1) as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        println!(
            "{:<22} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}{}",
            t.name,
            times.len(),
            fmt_dur(avg),
            fmt_dur(min),
            fmt_dur(max),
            fmt_dur(ci),
            fmt_dur(cpu),
            if all_proved { "" } else { "  (FAILURES)" }
        );
    }
    println!();
    println!("Paper (Table 5) reference shapes: CI time pKVM 2m18s, Vigor 7m18s,");
    println!("pgtable 2m18s, USB 10m6s, Komodo-S 20m24s, Komodo* 1h4m; Komodo* is");
    println!("the slowest and pgtable the fastest-per-POT.");
}
