//! Shared helpers for the benchmark harnesses that regenerate every table
//! and figure of the paper's evaluation (§5). See DESIGN.md §3 for the
//! experiment index.

pub mod diff;
pub mod report;

use std::time::Duration;

/// Formats a duration like the paper's Table 5 (`1m36s`, `49s`, `1h4m`).
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 3600.0 {
        format!("{}h{}m", s as u64 / 3600, (s as u64 % 3600) / 60)
    } else if s >= 60.0 {
        format!("{}m{:.0}s", s as u64 / 60, s % 60.0)
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{}ms", d.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_millis(250)), "250ms");
        assert_eq!(fmt_dur(Duration::from_secs(49)), "49.0s");
        assert_eq!(fmt_dur(Duration::from_secs(96)), "1m36s");
        assert_eq!(fmt_dur(Duration::from_secs(3840)), "1h4m");
    }
}
