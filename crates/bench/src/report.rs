//! The one report shape every `bench_pr*` harness emits.
//!
//! Before PR 4 each harness hand-rolled its own JSON with its own field
//! layout (`BENCH_PR1.json`, `BENCH_PR2.json` and `BENCH_PR3.json` shared
//! no structure beyond being JSON objects). This module fixes the schema:
//!
//! ```json
//! {
//!   "schema": "tpot-bench/v1",
//!   "harness": "bench_pr2",
//!   "meta":    { ... run parameters (jobs, seed, smoke, cores) ... },
//!   "targets": [ {"name": "...", ... per-target measurements ...}, ... ],
//!   "summary": { ... cross-target aggregates ... },
//!   "metrics": { ... optional embedded tpot-obs registry dump ... }
//! }
//! ```
//!
//! Values are [`tpot_obs::json::Value`] trees, so escaping and rendering
//! live in one place and a report round-trips through the same parser the
//! trace tooling uses.

use std::time::Duration;

use tpot_engine::{PotResult, PotStatus, Stats};
use tpot_obs::json::Value;

/// One harness run.
pub struct BenchReport {
    /// Harness name (`bench_pr1`, …).
    pub harness: String,
    /// Run parameters.
    pub meta: Vec<(String, Value)>,
    /// Per-target (or per-mode) rows.
    pub targets: Vec<TargetReport>,
    /// Cross-target aggregates.
    pub summary: Vec<(String, Value)>,
    /// Embedded `tpot-obs` metrics dump, when the harness captures one.
    pub metrics: Option<Value>,
}

/// One row of a [`BenchReport`].
pub struct TargetReport {
    /// Target (or fuzz-mode) name.
    pub name: String,
    /// Measurements.
    pub fields: Vec<(String, Value)>,
}

/// Shorthand: a JSON number.
pub fn num(v: f64) -> Value {
    Value::Num(v)
}

/// Shorthand: a JSON number from an integer.
pub fn int(v: u64) -> Value {
    Value::Num(v as f64)
}

/// Shorthand: a JSON string.
pub fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

impl BenchReport {
    /// An empty report for `harness`.
    pub fn new(harness: &str) -> Self {
        BenchReport {
            harness: harness.to_string(),
            meta: Vec::new(),
            targets: Vec::new(),
            summary: Vec::new(),
            metrics: None,
        }
    }

    /// Adds a `meta` entry.
    pub fn meta(&mut self, key: &str, v: Value) -> &mut Self {
        self.meta.push((key.to_string(), v));
        self
    }

    /// Adds a `summary` entry.
    pub fn summary(&mut self, key: &str, v: Value) -> &mut Self {
        self.summary.push((key.to_string(), v));
        self
    }

    /// Embeds the current `tpot-obs` metrics registry dump.
    pub fn embed_metrics(&mut self) -> &mut Self {
        self.metrics = tpot_obs::json::parse(&tpot_obs::metrics::to_json()).ok();
        self
    }

    /// Renders the canonical document.
    pub fn render(&self) -> String {
        let mut top = vec![
            ("schema".to_string(), s("tpot-bench/v1")),
            ("harness".to_string(), s(&self.harness)),
            ("meta".to_string(), Value::Obj(self.meta.clone())),
            (
                "targets".to_string(),
                Value::Arr(
                    self.targets
                        .iter()
                        .map(|t| {
                            let mut o = vec![("name".to_string(), s(&t.name))];
                            o.extend(t.fields.clone());
                            Value::Obj(o)
                        })
                        .collect(),
                ),
            ),
            ("summary".to_string(), Value::Obj(self.summary.clone())),
        ];
        if let Some(m) = &self.metrics {
            top.push(("metrics".to_string(), m.clone()));
        }
        Value::Obj(top).render()
    }

    /// Writes the document to `path` (plus a trailing newline).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render() + "\n")
    }
}

impl TargetReport {
    /// An empty row.
    pub fn new(name: &str) -> Self {
        TargetReport {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Adds a field.
    pub fn field(&mut self, key: &str, v: Value) -> &mut Self {
        self.fields.push((key.to_string(), v));
        self
    }
}

/// Canonical short status string for a POT outcome.
pub fn status_key(st: &PotStatus) -> String {
    match st {
        PotStatus::Proved => "proved".into(),
        PotStatus::Failed(_) => "failed".into(),
        PotStatus::Error(e) => format!("error:{e}"),
    }
}

/// Merges the per-POT stats of a run.
pub fn merged_stats(results: &[PotResult]) -> Stats {
    let mut agg = Stats::default();
    for r in results {
        agg.merge(&r.stats);
    }
    agg
}

/// True when two runs report the same POTs with the same statuses.
pub fn outcomes_match(a: &[PotResult], b: &[PotResult]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.pot == y.pot && status_key(&x.status) == status_key(&y.status))
}

/// Peak resident set size of this process in kilobytes (Linux `VmHWM`;
/// 0 where unavailable).
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|st| {
            st.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// The engine [`Stats`] fields every harness reports per target, in one
/// canonical naming.
pub fn stats_fields(st: &Stats) -> Vec<(String, Value)> {
    let ms = |d: Duration| num((d.as_secs_f64() * 1e3 * 10.0).round() / 10.0);
    vec![
        ("queries".to_string(), int(st.num_queries)),
        ("serializations".to_string(), int(st.num_serializations)),
        ("pointer_queries".to_string(), int(st.pointer_queries)),
        ("branch_queries".to_string(), int(st.branch_queries)),
        ("assertion_queries".to_string(), int(st.assertion_queries)),
        ("simplify_queries".to_string(), int(st.simplify_queries)),
        ("terms_total".to_string(), int(st.terms_total)),
        ("terms_shipped".to_string(), int(st.terms_shipped)),
        ("arena_bytes_total".to_string(), int(st.bytes_total)),
        ("arena_bytes_shipped".to_string(), int(st.bytes_shipped)),
        ("queue_wait_ms".to_string(), ms(st.queue_wait)),
        ("paths".to_string(), int(st.paths)),
        ("forks".to_string(), int(st.forks)),
        ("fork_bytes_shared".to_string(), int(st.fork_bytes_shared)),
        ("fork_bytes_copied".to_string(), int(st.fork_bytes_copied)),
        ("live_peak".to_string(), int(st.live_peak)),
        ("insts".to_string(), int(st.insts)),
        ("materializations".to_string(), int(st.materializations)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_canonical_schema() {
        let mut r = BenchReport::new("bench_test");
        r.meta("jobs", int(4));
        let mut t = TargetReport::new("pkvm");
        t.field("sequential_ms", num(12.5));
        t.field("outcomes", Value::Obj(vec![("p\"q".into(), s("proved"))]));
        r.targets.push(t);
        r.summary("all_outcomes_match", Value::Bool(true));
        let doc = tpot_obs::json::parse(&r.render()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("tpot-bench/v1")
        );
        assert_eq!(
            doc.get("harness").and_then(Value::as_str),
            Some("bench_test")
        );
        let targets = doc.get("targets").and_then(Value::as_arr).unwrap();
        assert_eq!(targets[0].get("name").and_then(Value::as_str), Some("pkvm"));
        assert_eq!(
            targets[0]
                .get("outcomes")
                .and_then(|o| o.get("p\"q"))
                .and_then(Value::as_str),
            Some("proved")
        );
        assert!(doc.get("metrics").is_none());
    }

    #[test]
    fn embedded_metrics_parse() {
        tpot_obs::metrics::counter("bench.test_counter").inc();
        let mut r = BenchReport::new("bench_test");
        r.embed_metrics();
        let doc = tpot_obs::json::parse(&r.render()).unwrap();
        let c = doc
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("bench.test_counter"))
            .and_then(Value::as_f64);
        assert!(c.unwrap_or(0.0) >= 1.0);
    }
}
