//! The bench regression observatory: compares two `tpot-bench/v1`
//! reports and classifies every difference.
//!
//! Verdict policy (what CI gates on):
//!
//! - **Outcome changes are hard failures.** A POT that was `proved` in the
//!   old report and anything else in the new one (or vice versa) is the
//!   one regression no noise threshold excuses. POTs present in only one
//!   report are informational — harnesses grow.
//! - **Wall-clock regressions fail past a noise threshold.** Keys ending
//!   in `_ms`/`_us` are timings; a timing fails when it grew by more than
//!   `time_threshold` (relative, default 20%) *and* more than
//!   `time_floor_ms` (absolute, default 100ms — sub-millisecond jitter on
//!   a 2ms phase is not a regression). Improvements are reported as info.
//! - **Counters are informational.** Solver counters (conflicts,
//!   propagations, steals, session hit rates …) move for legitimate
//!   reasons; the diff surfaces swings larger than the threshold so a
//!   reviewer sees them, but never fails on them.
//!
//! Reports are matched structurally: targets by `name`, phase rows by
//!   `label`, everything else by key. The walk is schema-agnostic past the
//! top level, so new harness fields participate in the diff without
//! touching this module.

use tpot_obs::json::Value;

/// Noise thresholds for [`diff_reports`].
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Relative growth a timing may show before it fails (0.20 = +20%).
    pub time_threshold: f64,
    /// Absolute growth (in ms) a timing must also exceed to fail.
    pub time_floor_ms: f64,
    /// Relative swing past which a counter is surfaced as info.
    pub counter_threshold: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            time_threshold: 0.20,
            time_floor_ms: 100.0,
            counter_threshold: 0.20,
        }
    }
}

/// How bad one difference is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Worth a glance (counter swings, added/removed rows, improvements).
    Info,
    /// A regression the thresholds reject (outcome flip, slow timing).
    Fail,
}

/// One classified difference between the two reports.
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// Severity under the configured thresholds.
    pub severity: Severity,
    /// Dotted path to the differing field (`targets.pKVM.phases.jobs4.wall_ms`).
    pub path: String,
    /// Human-readable description of the change.
    pub message: String,
}

/// The full comparison result.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every classified difference, fails first.
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// True when any difference is a [`Severity::Fail`].
    pub fn failed(&self) -> bool {
        self.lines.iter().any(|l| l.severity == Severity::Fail)
    }

    /// Number of hard failures.
    pub fn fail_count(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.severity == Severity::Fail)
            .count()
    }

    /// Renders the human-readable diff (one line per difference,
    /// fails first, `ok` when the reports are equivalent).
    pub fn render(&self) -> String {
        if self.lines.is_empty() {
            return "ok: reports are equivalent under the configured thresholds\n".into();
        }
        let mut out = String::new();
        for l in &self.lines {
            let tag = match l.severity {
                Severity::Fail => "FAIL",
                Severity::Info => "info",
            };
            out.push_str(&format!("{tag}  {}: {}\n", l.path, l.message));
        }
        out.push_str(&format!(
            "{} difference(s), {} failure(s)\n",
            self.lines.len(),
            self.fail_count()
        ));
        out
    }

    /// Renders the diff as a JSON artifact (for CI upload).
    pub fn render_json(&self) -> String {
        let lines: Vec<Value> = self
            .lines
            .iter()
            .map(|l| {
                Value::Obj(vec![
                    (
                        "severity".into(),
                        Value::Str(
                            match l.severity {
                                Severity::Fail => "fail",
                                Severity::Info => "info",
                            }
                            .into(),
                        ),
                    ),
                    ("path".into(), Value::Str(l.path.clone())),
                    ("message".into(), Value::Str(l.message.clone())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str("tpot-bench-diff/v1".into())),
            ("failed".into(), Value::Bool(self.failed())),
            ("lines".into(), Value::Arr(lines)),
        ])
        .render()
    }

    fn push(&mut self, severity: Severity, path: &str, message: String) {
        self.lines.push(DiffLine {
            severity,
            path: path.to_string(),
            message,
        });
    }

    fn sort(&mut self) {
        // Fails first; stable within a severity (walk order = document order).
        self.lines
            .sort_by_key(|l| std::cmp::Reverse(l.severity == Severity::Fail));
    }
}

/// A key holds a timing when it ends in `_ms`/`_us` (the repo-wide report
/// convention) — those get the fail-on-regression treatment.
fn is_timing_key(key: &str) -> bool {
    key.ends_with("_ms") || key.ends_with("_us")
}

/// Timing value of `key` in milliseconds (so the absolute floor means the
/// same thing for `_us` keys).
fn to_ms(key: &str, v: f64) -> f64 {
    if key.ends_with("_us") {
        v / 1e3
    } else {
        v
    }
}

/// Compares two `tpot-bench/v1` documents. `old` is the baseline; growth
/// is measured `new` against `old`.
pub fn diff_reports(old: &Value, new: &Value, cfg: &DiffConfig) -> DiffReport {
    let mut rep = DiffReport::default();
    for (doc, which) in [(old, "old"), (new, "new")] {
        if doc.get("schema").and_then(Value::as_str) != Some("tpot-bench/v1") {
            rep.push(
                Severity::Fail,
                "schema",
                format!("{which} report is not a tpot-bench/v1 document"),
            );
        }
    }
    if rep.failed() {
        return rep;
    }
    let (ha, hb) = (
        old.get("harness").and_then(Value::as_str).unwrap_or("?"),
        new.get("harness").and_then(Value::as_str).unwrap_or("?"),
    );
    if ha != hb {
        rep.push(
            Severity::Info,
            "harness",
            format!("comparing different harnesses: {ha} vs {hb}"),
        );
    }
    diff_value(
        old.get("targets").unwrap_or(&Value::Null),
        new.get("targets").unwrap_or(&Value::Null),
        "targets",
        cfg,
        &mut rep,
    );
    diff_value(
        old.get("summary").unwrap_or(&Value::Null),
        new.get("summary").unwrap_or(&Value::Null),
        "summary",
        cfg,
        &mut rep,
    );
    // The embedded metrics registry is counters-only by construction:
    // surfaced, never gating.
    if let (Some(ma), Some(mb)) = (old.get("metrics"), new.get("metrics")) {
        diff_value(ma, mb, "metrics", cfg, &mut rep);
    }
    rep.sort();
    rep
}

/// The name under which an array element is matched against the other
/// report: `name` (target rows), then `label` (phase rows).
fn row_key(v: &Value) -> Option<&str> {
    v.get("name")
        .and_then(Value::as_str)
        .or_else(|| v.get("label").and_then(Value::as_str))
}

fn diff_value(a: &Value, b: &Value, path: &str, cfg: &DiffConfig, rep: &mut DiffReport) {
    match (a, b) {
        (Value::Obj(oa), Value::Obj(ob)) => {
            for (k, va) in oa {
                match ob.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff_value(va, vb, &format!("{path}.{k}"), cfg, rep),
                    None => rep.push(
                        Severity::Info,
                        &format!("{path}.{k}"),
                        "removed in new report".into(),
                    ),
                }
            }
            for (k, _) in ob {
                if !oa.iter().any(|(ka, _)| ka == k) {
                    rep.push(
                        Severity::Info,
                        &format!("{path}.{k}"),
                        "added in new report".into(),
                    );
                }
            }
        }
        (Value::Arr(aa), Value::Arr(ab)) => {
            let keyed = aa.iter().chain(ab.iter()).all(|v| row_key(v).is_some());
            if keyed {
                for va in aa {
                    let k = row_key(va).unwrap();
                    match ab.iter().find(|vb| row_key(vb) == Some(k)) {
                        Some(vb) => diff_value(va, vb, &format!("{path}.{k}"), cfg, rep),
                        None => rep.push(
                            Severity::Info,
                            &format!("{path}.{k}"),
                            "row removed in new report".into(),
                        ),
                    }
                }
                for vb in ab {
                    let k = row_key(vb).unwrap();
                    if !aa.iter().any(|va| row_key(va) == Some(k)) {
                        rep.push(
                            Severity::Info,
                            &format!("{path}.{k}"),
                            "row added in new report".into(),
                        );
                    }
                }
            } else {
                if aa.len() != ab.len() {
                    rep.push(
                        Severity::Info,
                        path,
                        format!("array length {} -> {}", aa.len(), ab.len()),
                    );
                }
                for (i, (va, vb)) in aa.iter().zip(ab.iter()).enumerate() {
                    diff_value(va, vb, &format!("{path}.{i}"), cfg, rep);
                }
            }
        }
        (Value::Num(na), Value::Num(nb)) => diff_number(*na, *nb, path, cfg, rep),
        _ if a != b => {
            let (sa, sb) = (scalar_repr(a), scalar_repr(b));
            // A changed POT outcome is the one scalar flip that hard-fails;
            // every other scalar change is informational.
            let sev = if path.contains(".outcomes.") {
                Severity::Fail
            } else {
                Severity::Info
            };
            let what = if path.contains(".outcomes.") {
                "outcome changed"
            } else {
                "changed"
            };
            rep.push(sev, path, format!("{what}: {sa} -> {sb}"));
        }
        _ => {}
    }
}

fn diff_number(a: f64, b: f64, path: &str, cfg: &DiffConfig, rep: &mut DiffReport) {
    if a == b {
        return;
    }
    let key = path.rsplit('.').next().unwrap_or(path);
    let rel = if a != 0.0 { (b - a) / a } else { f64::INFINITY };
    if is_timing_key(key) {
        let grew_ms = to_ms(key, b - a);
        if rel > cfg.time_threshold && grew_ms > cfg.time_floor_ms {
            rep.push(
                Severity::Fail,
                path,
                format!("timing regressed {:+.1}%: {a:.1} -> {b:.1}", rel * 100.0),
            );
        } else if rel < -cfg.time_threshold && to_ms(key, a - b) > cfg.time_floor_ms {
            rep.push(
                Severity::Info,
                path,
                format!("timing improved {:+.1}%: {a:.1} -> {b:.1}", rel * 100.0),
            );
        }
    } else if rel.abs() > cfg.counter_threshold {
        rep.push(
            Severity::Info,
            path,
            format!("counter moved {:+.1}%: {a} -> {b}", rel * 100.0),
        );
    }
}

fn scalar_repr(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => other.render(),
    }
}

/// One row of the `tpot-bench history` trajectory: the headline numbers of
/// one committed report.
#[derive(Clone, Debug)]
pub struct HistoryRow {
    /// Source file.
    pub file: String,
    /// Harness name.
    pub harness: String,
    /// POT outcome histogram over every target (`status -> count`).
    pub outcomes: Vec<(String, u64)>,
    /// Sum of the top-level per-target timings (`*_ms`, phase rows
    /// excluded), the closest thing to "how long this harness's
    /// measured work took".
    pub wall_ms: f64,
}

/// Extracts the trajectory row of one parsed report.
pub fn history_row(file: &str, doc: &Value) -> HistoryRow {
    let harness = doc
        .get("harness")
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string();
    let mut outcomes: Vec<(String, u64)> = Vec::new();
    let mut wall = 0.0;
    if let Some(targets) = doc.get("targets").and_then(Value::as_arr) {
        for t in targets {
            if let Some(Value::Obj(o)) = t.get("outcomes") {
                for (_, st) in o {
                    let k = st.as_str().unwrap_or("?").to_string();
                    match outcomes.iter_mut().find(|(ok, _)| *ok == k) {
                        Some((_, n)) => *n += 1,
                        None => outcomes.push((k, 1)),
                    }
                }
            }
            if let Value::Obj(o) = t {
                for (k, v) in o {
                    if is_timing_key(k) {
                        if let Some(n) = v.as_f64() {
                            wall += to_ms(k, n);
                        }
                    }
                }
            }
        }
    }
    outcomes.sort();
    HistoryRow {
        file: file.to_string(),
        harness,
        outcomes,
        wall_ms: wall,
    }
}

/// Renders the trajectory table.
pub fn render_history(rows: &[HistoryRow]) -> String {
    let mut out = String::from("file             harness      wall        outcomes\n");
    for r in rows {
        let oc = r
            .outcomes
            .iter()
            .map(|(k, n)| format!("{n} {k}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "{:<16} {:<12} {:>9.1}ms  {}\n",
            r.file, r.harness, r.wall_ms, oc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpot_obs::json::parse;

    fn report(wall: f64, outcome: &str) -> Value {
        parse(&format!(
            r#"{{"schema":"tpot-bench/v1","harness":"bench_t",
                "meta":{{}},
                "targets":[{{"name":"pkvm",
                             "outcomes":{{"spec__init":"{outcome}","spec__get":"proved"}},
                             "wall_ms":{wall},
                             "phases":[{{"label":"jobs4","wall_ms":{wall},"steals":3}}]}}],
                "summary":{{"paths":23,"peak_rss_kb":1000}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(1000.0, "proved");
        let d = diff_reports(&a, &a, &DiffConfig::default());
        assert!(!d.failed(), "{}", d.render());
        assert!(d.lines.is_empty());
        assert!(d.render().starts_with("ok"));
    }

    #[test]
    fn injected_25pct_wall_regression_fails() {
        let a = report(1000.0, "proved");
        let b = report(1250.0, "proved");
        let d = diff_reports(&a, &b, &DiffConfig::default());
        assert!(d.failed(), "{}", d.render());
        // Both the target-level and the phase-row timing fail, nothing else.
        assert_eq!(d.fail_count(), 2);
        assert!(d.lines[0].path.contains("wall_ms"));
        assert!(d.render().contains("FAIL"));
        assert!(d.render_json().contains("\"failed\":true"));
    }

    #[test]
    fn small_or_subfloor_timing_noise_passes() {
        let a = report(1000.0, "proved");
        // +10% is under the relative threshold.
        let d = diff_reports(&a, &report(1100.0, "proved"), &DiffConfig::default());
        assert!(!d.failed(), "{}", d.render());
        // +50ms on 100ms is +50% but under the absolute floor.
        let d2 = diff_reports(
            &report(100.0, "proved"),
            &report(150.0, "proved"),
            &DiffConfig::default(),
        );
        assert!(!d2.failed(), "{}", d2.render());
    }

    #[test]
    fn outcome_flip_is_a_hard_fail_even_when_fast() {
        let a = report(1000.0, "proved");
        let b = report(500.0, "failed");
        let d = diff_reports(&a, &b, &DiffConfig::default());
        assert!(d.failed());
        let fail = d
            .lines
            .iter()
            .find(|l| l.severity == Severity::Fail)
            .unwrap();
        assert!(fail.path.contains("outcomes.spec__init"), "{}", fail.path);
        assert!(fail.message.contains("proved -> failed"));
    }

    #[test]
    fn added_and_removed_rows_are_informational() {
        let a = report(1000.0, "proved");
        let mut b = report(1000.0, "proved");
        if let Value::Obj(top) = &mut b {
            let targets = top
                .iter_mut()
                .find(|(k, _)| k == "targets")
                .map(|(_, v)| v)
                .unwrap();
            if let Value::Arr(rows) = targets {
                rows.push(
                    parse(r#"{"name":"pgtable","outcomes":{"spec__map":"proved"}}"#).unwrap(),
                );
            }
        }
        let d = diff_reports(&a, &b, &DiffConfig::default());
        assert!(!d.failed(), "{}", d.render());
        assert!(d
            .lines
            .iter()
            .any(|l| l.path == "targets.pgtable" && l.message.contains("added")));
    }

    #[test]
    fn counters_never_gate() {
        let a = report(1000.0, "proved");
        let mut b = report(1000.0, "proved");
        if let Value::Obj(top) = &mut b {
            let summary = top
                .iter_mut()
                .find(|(k, _)| k == "summary")
                .map(|(_, v)| v)
                .unwrap();
            if let Value::Obj(o) = summary {
                for (k, v) in o.iter_mut() {
                    if k == "paths" {
                        *v = Value::Num(99.0);
                    }
                }
            }
        }
        let d = diff_reports(&a, &b, &DiffConfig::default());
        assert!(!d.failed(), "{}", d.render());
        assert!(d
            .lines
            .iter()
            .any(|l| l.path == "summary.paths" && l.message.contains("counter moved")));
    }

    #[test]
    fn non_bench_documents_are_rejected() {
        let bogus = parse(r#"{"schema":"something-else"}"#).unwrap();
        let d = diff_reports(&bogus, &report(1.0, "proved"), &DiffConfig::default());
        assert!(d.failed());
    }

    #[test]
    fn history_rows_summarize_outcomes_and_wall() {
        let r = history_row("BENCH_PR9.json", &report(1234.5, "proved"));
        assert_eq!(r.harness, "bench_t");
        assert_eq!(r.outcomes, vec![("proved".to_string(), 2)]);
        assert!((r.wall_ms - 1234.5).abs() < 1e-9);
        let table = render_history(&[r]);
        assert!(table.contains("BENCH_PR9.json"));
        assert!(table.contains("2 proved"));
    }
}
