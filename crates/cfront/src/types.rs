//! Semantic types and data layout (LP64).

use std::collections::HashMap;
use std::fmt;

/// A resolved C type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Type {
    /// `void` (only behind pointers or as a return type).
    Void,
    /// Integer type: width in bits (8/16/32/64) and signedness.
    Int {
        /// Width in bits.
        width: u32,
        /// Signedness.
        signed: bool,
    },
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
    /// Array of a fixed element count.
    Array(Box<Type>, u64),
    /// Struct, by index into [`StructLayouts`].
    Struct(usize),
}

impl Type {
    /// The LP64 `int`.
    pub const INT: Type = Type::Int {
        width: 32,
        signed: true,
    };
    /// The LP64 `unsigned long` (also `size_t`, `uintptr_t`).
    pub const ULONG: Type = Type::Int {
        width: 64,
        signed: false,
    };
    /// `unsigned char`.
    pub const UCHAR: Type = Type::Int {
        width: 8,
        signed: false,
    };
    /// `_Bool` (we give it `unsigned char` representation).
    pub const BOOL: Type = Type::Int {
        width: 8,
        signed: false,
    };

    /// True for any integer type.
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Int { .. })
    }

    /// True for pointers.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// True for integers or pointers (things that fit in a register).
    pub fn is_scalar(&self) -> bool {
        self.is_integer() || self.is_pointer()
    }

    /// Width in bits of a scalar type.
    ///
    /// # Panics
    /// Panics on non-scalar types.
    pub fn bit_width(&self) -> u32 {
        match self {
            Type::Int { width, .. } => *width,
            Type::Ptr(_) => 64,
            other => panic!("bit_width of non-scalar type {other:?}"),
        }
    }

    /// Signedness for arithmetic purposes (pointers are unsigned).
    pub fn is_signed(&self) -> bool {
        matches!(self, Type::Int { signed: true, .. })
    }

    /// Size in bytes.
    pub fn size(&self, layouts: &StructLayouts) -> u64 {
        match self {
            Type::Void => 1, // GNU-style void arithmetic; not reachable in checked code
            Type::Int { width, .. } => (*width / 8) as u64,
            Type::Ptr(_) => 8,
            Type::Array(e, n) => e.size(layouts) * n,
            Type::Struct(i) => layouts.structs[*i].size,
        }
    }

    /// Natural alignment in bytes.
    pub fn align(&self, layouts: &StructLayouts) -> u64 {
        match self {
            Type::Void => 1,
            Type::Int { width, .. } => (*width / 8) as u64,
            Type::Ptr(_) => 8,
            Type::Array(e, _) => e.align(layouts),
            Type::Struct(i) => layouts.structs[*i].align,
        }
    }

    /// The type `self` decays to as an rvalue (arrays decay to pointers).
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(e, _) => Type::Ptr(e.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int { width, signed } => {
                write!(f, "{}{}", if *signed { "i" } else { "u" }, width)
            }
            Type::Ptr(p) => write!(f, "{p}*"),
            Type::Array(e, n) => write!(f, "{e}[{n}]"),
            Type::Struct(i) => write!(f, "struct#{i}"),
        }
    }
}

/// A struct field with its computed offset.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset within the struct.
    pub offset: u64,
}

/// Layout of one struct.
#[derive(Clone, Debug)]
pub struct StructInfo {
    /// Tag name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Total size including tail padding.
    pub size: u64,
    /// Alignment.
    pub align: u64,
}

impl StructInfo {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// All struct layouts of a translation unit.
#[derive(Clone, Debug, Default)]
pub struct StructLayouts {
    /// Structs by index (the index appearing in [`Type::Struct`]).
    pub structs: Vec<StructInfo>,
    /// Tag name → index.
    pub by_name: HashMap<String, usize>,
}

impl StructLayouts {
    /// Registers a struct from resolved field types, computing offsets with
    /// natural alignment and padding (System V rules).
    pub fn define(&mut self, name: &str, field_tys: Vec<(String, Type)>) -> usize {
        let mut fields = Vec::with_capacity(field_tys.len());
        let mut offset: u64 = 0;
        let mut align: u64 = 1;
        for (fname, fty) in field_tys {
            let fa = fty.align(self);
            let fs = fty.size(self);
            offset = offset.div_ceil(fa) * fa;
            fields.push(Field {
                name: fname,
                ty: fty,
                offset,
            });
            offset += fs;
            align = align.max(fa);
        }
        let size = offset.div_ceil(align) * align;
        let idx = self.structs.len();
        self.structs.push(StructInfo {
            name: name.to_string(),
            fields,
            size: size.max(1),
            align,
        });
        self.by_name.insert(name.to_string(), idx);
        idx
    }

    /// Looks up a struct index by tag name.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        let l = StructLayouts::default();
        assert_eq!(Type::INT.size(&l), 4);
        assert_eq!(Type::ULONG.size(&l), 8);
        assert_eq!(Type::Ptr(Box::new(Type::Void)).size(&l), 8);
        assert_eq!(Type::Array(Box::new(Type::INT), 10).size(&l), 40);
    }

    #[test]
    fn struct_layout_padding() {
        let mut l = StructLayouts::default();
        // struct { char c; long x; char d; } → offsets 0, 8, 16; size 24.
        let i = l.define(
            "s",
            vec![
                ("c".into(), Type::UCHAR),
                ("x".into(), Type::ULONG),
                ("d".into(), Type::UCHAR),
            ],
        );
        let s = &l.structs[i];
        assert_eq!(s.field("c").unwrap().offset, 0);
        assert_eq!(s.field("x").unwrap().offset, 8);
        assert_eq!(s.field("d").unwrap().offset, 16);
        assert_eq!(s.size, 24);
        assert_eq!(s.align, 8);
    }

    #[test]
    fn nested_struct_layout() {
        let mut l = StructLayouts::default();
        let inner = l.define(
            "inner",
            vec![("a".into(), Type::INT), ("b".into(), Type::INT)],
        );
        let outer = l.define(
            "outer",
            vec![
                ("c".into(), Type::UCHAR),
                ("in".into(), Type::Struct(inner)),
            ],
        );
        let s = &l.structs[outer];
        assert_eq!(s.field("in").unwrap().offset, 4);
        assert_eq!(s.size, 12);
    }

    #[test]
    fn decay() {
        let arr = Type::Array(Box::new(Type::INT), 4);
        assert_eq!(arr.decayed(), Type::Ptr(Box::new(Type::INT)));
        assert_eq!(Type::INT.decayed(), Type::INT);
    }
}
