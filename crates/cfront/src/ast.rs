//! Abstract syntax tree produced by the parser.

/// A syntactic type expression (resolved to [`crate::types::Type`] by sema).
#[derive(Clone, Debug, PartialEq)]
pub enum TypeExpr {
    /// `void`.
    Void,
    /// Builtin integer type (width in bits, signedness).
    Int(u32, bool),
    /// A typedef name.
    Named(String),
    /// `struct S`.
    Struct(String),
    /// Pointer.
    Ptr(Box<TypeExpr>),
    /// Array with a constant-expression length.
    Array(Box<TypeExpr>, Box<Expr>),
}

/// Binary operators (before signedness resolution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
    /// Logical not.
    LogNot,
    /// Pointer dereference.
    Deref,
    /// Address-of.
    AddrOf,
}

/// A call argument: an expression, or a type name (for spec primitives like
/// `any(int, x)` and `names_obj(p, struct file[N])`).
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// Ordinary expression argument.
    Expr(Expr),
    /// Type-name argument.
    Type(TypeExpr),
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal (value, unsigned suffix, long suffix).
    IntLit(u128, bool, bool),
    /// Character literal.
    CharLit(u8),
    /// String literal (only valid as a spec-primitive argument).
    StrLit(String),
    /// Identifier (variable, enum constant, or function designator).
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Pre-increment/decrement (`inc` selects ++).
    PreIncDec(Box<Expr>, bool),
    /// Post-increment/decrement.
    PostIncDec(Box<Expr>, bool),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&`.
    LogAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    LogOr(Box<Expr>, Box<Expr>),
    /// Assignment; `Some(op)` for compound assignment.
    Assign(Option<BinOp>, Box<Expr>, Box<Expr>),
    /// `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Direct call (function designator by name).
    Call(String, Vec<Arg>),
    /// `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `s.f` (`arrow = false`) or `p->f` (`arrow = true`).
    Member(Box<Expr>, String, bool),
    /// `(type)e`.
    Cast(TypeExpr, Box<Expr>),
    /// `sizeof(type)`.
    SizeofType(TypeExpr),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
}

/// An initializer.
#[derive(Clone, Debug, PartialEq)]
pub enum Init {
    /// Scalar expression.
    Scalar(Expr),
    /// Brace list.
    List(Vec<Init>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl(TypeExpr, String, Option<Init>),
    /// Expression statement.
    Expr(Expr),
    /// `if`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while`.
    While(Expr, Box<Stmt>),
    /// `for`.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `{ … }`.
    Block(Vec<Stmt>),
    /// A multi-declarator declaration expanded into several statements;
    /// unlike [`Stmt::Block`], introduces no scope.
    Seq(Vec<Stmt>),
}

/// Top-level items.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// `struct S { … };`
    StructDef {
        /// Tag name.
        name: String,
        /// Fields in declaration order.
        fields: Vec<(TypeExpr, String)>,
    },
    /// `typedef T name;`
    Typedef {
        /// New type name.
        name: String,
        /// Aliased type.
        ty: TypeExpr,
    },
    /// `enum { A, B = 3, … };`
    EnumDef {
        /// Optional tag.
        name: Option<String>,
        /// Variants with optional constant expressions.
        variants: Vec<(String, Option<Expr>)>,
    },
    /// A global variable (or `extern` declaration).
    Global {
        /// Declared type.
        ty: TypeExpr,
        /// Name.
        name: String,
        /// Optional initializer.
        init: Option<Init>,
        /// Declared `extern` (no definition here).
        is_extern: bool,
    },
    /// A function definition or prototype.
    Func {
        /// Return type.
        ret: TypeExpr,
        /// Name.
        name: String,
        /// Parameters.
        params: Vec<(TypeExpr, String)>,
        /// Body (`None` for prototypes).
        body: Option<Vec<Stmt>>,
    },
}

/// A parsed translation unit.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}
