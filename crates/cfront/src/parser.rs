//! Recursive-descent parser for the C subset.

use std::collections::HashSet;

use crate::ast::*;
use crate::token::{Punct, SpannedTok, Tok};

/// Spec primitives whose argument at the given index is a *type name*.
pub fn type_arg_position(callee: &str) -> Option<usize> {
    match callee {
        "any" => Some(0),
        "points_to" | "names_obj" | "names_obj_forall" | "names_obj_forall_cond" => Some(1),
        _ => None,
    }
}

/// Parses a token stream into a [`Program`].
pub fn parse(tokens: Vec<SpannedTok>) -> Result<Program, String> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        typedefs: HashSet::new(),
        structs: HashSet::new(),
        anon_counter: 0,
    };
    p.parse_program()
}

const BASE_TYPE_KWS: &[&str] = &[
    "void", "char", "short", "int", "long", "unsigned", "signed", "_Bool", "bool",
];
const QUALIFIERS: &[&str] = &["const", "volatile", "static", "inline", "register"];

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    typedefs: HashSet<String>,
    structs: HashSet<String>,
    anon_counter: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!(
            "line {}: {} (at {})",
            self.line(),
            msg,
            self.peek()
        ))
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), String> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(&format!("expected {p:?}"))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(format!(
                "line {}: expected identifier, got {other}",
                self.line()
            )),
        }
    }

    fn skip_qualifiers(&mut self) {
        loop {
            let is_q = matches!(self.peek(), Tok::Ident(s) if QUALIFIERS.contains(&s.as_str()));
            if is_q {
                self.bump();
            } else {
                return;
            }
        }
    }

    fn at_type_start(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) => {
                BASE_TYPE_KWS.contains(&s.as_str())
                    || QUALIFIERS.contains(&s.as_str())
                    || s == "struct"
                    || s == "enum"
                    || self.typedefs.contains(s)
            }
            _ => false,
        }
    }

    // ------------------------------------------------------------- types

    /// Parses a type specifier (no declarator): base keywords, `struct S`,
    /// or a typedef name.
    fn parse_type_specifier(&mut self) -> Result<TypeExpr, String> {
        self.skip_qualifiers();
        if self.eat_kw("struct") {
            let name = self.expect_ident()?;
            return Ok(TypeExpr::Struct(name));
        }
        if self.eat_kw("enum") {
            let _name = self.expect_ident()?;
            return Ok(TypeExpr::Int(32, true));
        }
        // Collect base-type keywords.
        let mut kws: Vec<String> = Vec::new();
        loop {
            self.skip_qualifiers();
            match self.peek() {
                Tok::Ident(s) if BASE_TYPE_KWS.contains(&s.as_str()) => {
                    kws.push(s.clone());
                    self.bump();
                }
                _ => break,
            }
        }
        if kws.is_empty() {
            if let Tok::Ident(s) = self.peek() {
                if self.typedefs.contains(s) {
                    let name = s.clone();
                    self.bump();
                    return Ok(TypeExpr::Named(name));
                }
            }
            return self.err("expected type");
        }
        base_type_from_keywords(&kws)
            .ok_or_else(|| format!("line {}: invalid type keywords {kws:?}", self.line()))
    }

    /// Parses the pointer/array declarator around `base`, returning the full
    /// type and the declared name.
    fn parse_declarator(&mut self, base: TypeExpr) -> Result<(TypeExpr, String), String> {
        let mut ty = base;
        while self.eat_punct(Punct::Star) {
            self.skip_qualifiers();
            ty = TypeExpr::Ptr(Box::new(ty));
        }
        let name = self.expect_ident()?;
        let ty = self.parse_array_suffixes(ty)?;
        Ok((ty, name))
    }

    fn parse_array_suffixes(&mut self, mut ty: TypeExpr) -> Result<TypeExpr, String> {
        // Multi-dimensional arrays: collect sizes, then apply so that
        // the first suffix is the outermost dimension.
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            let e = self.parse_expr()?;
            self.expect_punct(Punct::RBracket)?;
            dims.push(e);
        }
        for e in dims.into_iter().rev() {
            ty = TypeExpr::Array(Box::new(ty), Box::new(e));
        }
        Ok(ty)
    }

    /// Parses an abstract type name (casts, sizeof, spec-primitive type
    /// arguments): specifier, stars, optional array suffixes.
    fn parse_abstract_type(&mut self) -> Result<TypeExpr, String> {
        let mut ty = self.parse_type_specifier()?;
        while self.eat_punct(Punct::Star) {
            self.skip_qualifiers();
            ty = TypeExpr::Ptr(Box::new(ty));
        }
        ty = self.parse_array_suffixes(ty)?;
        Ok(ty)
    }

    // ------------------------------------------------------------- program

    fn parse_program(&mut self) -> Result<Program, String> {
        let mut items = Vec::new();
        while self.peek() != &Tok::Eof {
            self.parse_top_level(&mut items)?;
        }
        Ok(Program { items })
    }

    fn parse_top_level(&mut self, items: &mut Vec<Item>) -> Result<(), String> {
        if self.eat_kw("typedef") {
            // typedef struct [Tag] { ... } Name;  or  typedef T Name;
            if self.eat_kw("struct") {
                let tag = if let Tok::Ident(s) = self.peek() {
                    if self.peek2() == &Tok::Punct(Punct::LBrace) {
                        let t = s.clone();
                        self.bump();
                        Some(t)
                    } else {
                        None
                    }
                } else {
                    None
                };
                if self.peek() == &Tok::Punct(Punct::LBrace) {
                    let tag = tag.unwrap_or_else(|| {
                        self.anon_counter += 1;
                        format!("__anon{}", self.anon_counter)
                    });
                    let fields = self.parse_struct_body()?;
                    self.structs.insert(tag.clone());
                    items.push(Item::StructDef {
                        name: tag.clone(),
                        fields,
                    });
                    let (ty, name) = self.parse_declarator(TypeExpr::Struct(tag))?;
                    self.expect_punct(Punct::Semi)?;
                    self.typedefs.insert(name.clone());
                    items.push(Item::Typedef { name, ty });
                    return Ok(());
                }
                // typedef struct Tag Name;
                let tag = self.expect_ident()?;
                let (ty, name) = self.parse_declarator(TypeExpr::Struct(tag))?;
                self.expect_punct(Punct::Semi)?;
                self.typedefs.insert(name.clone());
                items.push(Item::Typedef { name, ty });
                return Ok(());
            }
            let base = self.parse_type_specifier()?;
            let (ty, name) = self.parse_declarator(base)?;
            self.expect_punct(Punct::Semi)?;
            self.typedefs.insert(name.clone());
            items.push(Item::Typedef { name, ty });
            return Ok(());
        }
        if matches!(self.peek(), Tok::Ident(s) if s == "struct")
            && matches!(self.peek2(), Tok::Ident(_))
            && self.toks.get(self.pos + 2).map(|t| &t.tok) == Some(&Tok::Punct(Punct::LBrace))
        {
            self.bump(); // struct
            let name = self.expect_ident()?;
            let fields = self.parse_struct_body()?;
            self.expect_punct(Punct::Semi)?;
            self.structs.insert(name.clone());
            items.push(Item::StructDef { name, fields });
            return Ok(());
        }
        if self.eat_kw("enum") {
            let name = if let Tok::Ident(s) = self.peek() {
                let n = s.clone();
                self.bump();
                Some(n)
            } else {
                None
            };
            self.expect_punct(Punct::LBrace)?;
            let mut variants = Vec::new();
            while self.peek() != &Tok::Punct(Punct::RBrace) {
                let vname = self.expect_ident()?;
                let e = if self.eat_punct(Punct::Assign) {
                    Some(self.parse_ternary()?)
                } else {
                    None
                };
                variants.push((vname, e));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
            self.expect_punct(Punct::Semi)?;
            items.push(Item::EnumDef { name, variants });
            return Ok(());
        }
        let mut is_extern = false;
        if self.eat_kw("extern") {
            is_extern = true;
        }
        let base = self.parse_type_specifier()?;
        // A bare "struct S;" forward declaration.
        if self.eat_punct(Punct::Semi) {
            return Ok(());
        }
        let (ty, name) = self.parse_declarator(base.clone())?;
        if self.peek() == &Tok::Punct(Punct::LParen) {
            // Function definition or prototype.
            self.bump();
            let mut params = Vec::new();
            if !self.eat_punct(Punct::RParen) {
                if self.eat_kw("void") && self.peek() == &Tok::Punct(Punct::RParen) {
                    self.bump();
                } else {
                    loop {
                        let pbase = self.parse_type_specifier()?;
                        let (pty, pname) = self.parse_declarator(pbase)?;
                        params.push((pty, pname));
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                }
            }
            if self.eat_punct(Punct::Semi) {
                items.push(Item::Func {
                    ret: ty,
                    name,
                    params,
                    body: None,
                });
                return Ok(());
            }
            self.expect_punct(Punct::LBrace)?;
            let body = self.parse_block_body()?;
            items.push(Item::Func {
                ret: ty,
                name,
                params,
                body: Some(body),
            });
            return Ok(());
        }
        // Global variable(s).
        let mut pending = vec![(ty, name)];
        loop {
            let (ty, name) = pending.pop().unwrap();
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_init()?)
            } else {
                None
            };
            items.push(Item::Global {
                ty,
                name,
                init,
                is_extern,
            });
            if self.eat_punct(Punct::Comma) {
                pending.push(self.parse_declarator(base.clone())?);
            } else {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn parse_struct_body(&mut self) -> Result<Vec<(TypeExpr, String)>, String> {
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Tok::Punct(Punct::RBrace) {
            let base = self.parse_type_specifier()?;
            loop {
                let (fty, fname) = self.parse_declarator(base.clone())?;
                fields.push((fty, fname));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::Semi)?;
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(fields)
    }

    fn parse_init(&mut self) -> Result<Init, String> {
        if self.eat_punct(Punct::LBrace) {
            let mut list = Vec::new();
            while self.peek() != &Tok::Punct(Punct::RBrace) {
                list.push(self.parse_init()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
            Ok(Init::List(list))
        } else {
            Ok(Init::Scalar(self.parse_assign_expr()?))
        }
    }

    // ------------------------------------------------------------- stmts

    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, String> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, String> {
        if self.eat_punct(Punct::LBrace) {
            return Ok(Stmt::Block(self.parse_block_body()?));
        }
        if self.eat_kw("if") {
            self.expect_punct(Punct::LParen)?;
            let cond = self.parse_expr()?;
            self.expect_punct(Punct::RParen)?;
            let then = Box::new(self.parse_stmt()?);
            let els = if self.eat_kw("else") {
                Some(Box::new(self.parse_stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw("while") {
            self.expect_punct(Punct::LParen)?;
            let cond = self.parse_expr()?;
            self.expect_punct(Punct::RParen)?;
            let body = Box::new(self.parse_stmt()?);
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_kw("for") {
            self.expect_punct(Punct::LParen)?;
            let init = if self.eat_punct(Punct::Semi) {
                None
            } else {
                let s = if self.at_type_start() {
                    self.parse_decl_stmt()?
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Stmt::Expr(e)
                };
                Some(Box::new(s))
            };
            let cond = if self.peek() == &Tok::Punct(Punct::Semi) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(Punct::Semi)?;
            let step = if self.peek() == &Tok::Punct(Punct::RParen) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(Punct::RParen)?;
            let body = Box::new(self.parse_stmt()?);
            return Ok(Stmt::For(init, cond, step, body));
        }
        if self.eat_kw("return") {
            if self.eat_punct(Punct::Semi) {
                return Ok(Stmt::Return(None));
            }
            let e = self.parse_expr()?;
            self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_kw("break") {
            self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::Continue);
        }
        if self.at_type_start() {
            return self.parse_decl_stmt();
        }
        let e = self.parse_expr()?;
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::Expr(e))
    }

    /// Parses a declaration statement, expanding multiple declarators into a
    /// block of single declarations.
    fn parse_decl_stmt(&mut self) -> Result<Stmt, String> {
        let base = self.parse_type_specifier()?;
        let mut decls = Vec::new();
        loop {
            let (ty, name) = self.parse_declarator(base.clone())?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_init()?)
            } else {
                None
            };
            decls.push(Stmt::Decl(ty, name, init));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        if decls.len() == 1 {
            Ok(decls.pop().unwrap())
        } else {
            Ok(Stmt::Seq(decls))
        }
    }

    // ------------------------------------------------------------- exprs

    fn parse_expr(&mut self) -> Result<Expr, String> {
        self.parse_assign_expr()
    }

    fn parse_assign_expr(&mut self) -> Result<Expr, String> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek() {
            Tok::Punct(Punct::Assign) => None,
            Tok::Punct(Punct::PlusAssign) => Some(BinOp::Add),
            Tok::Punct(Punct::MinusAssign) => Some(BinOp::Sub),
            Tok::Punct(Punct::StarAssign) => Some(BinOp::Mul),
            Tok::Punct(Punct::SlashAssign) => Some(BinOp::Div),
            Tok::Punct(Punct::PercentAssign) => Some(BinOp::Rem),
            Tok::Punct(Punct::AmpAssign) => Some(BinOp::And),
            Tok::Punct(Punct::PipeAssign) => Some(BinOp::Or),
            Tok::Punct(Punct::CaretAssign) => Some(BinOp::Xor),
            Tok::Punct(Punct::ShlAssign) => Some(BinOp::Shl),
            Tok::Punct(Punct::ShrAssign) => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign_expr()?;
        Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_ternary(&mut self) -> Result<Expr, String> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct(Punct::Question) {
            let t = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let e = self.parse_ternary()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(e)));
        }
        Ok(cond)
    }

    /// Precedence-climbing binary expression parser.
    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, String> {
        let mut lhs = self.parse_cast_unary()?;
        loop {
            let (prec, kind) = match self.peek() {
                Tok::Punct(Punct::PipePipe) => (1, None),
                Tok::Punct(Punct::AmpAmp) => (2, None),
                Tok::Punct(Punct::Pipe) => (3, Some(BinOp::Or)),
                Tok::Punct(Punct::Caret) => (4, Some(BinOp::Xor)),
                Tok::Punct(Punct::Amp) => (5, Some(BinOp::And)),
                Tok::Punct(Punct::EqEq) => (6, Some(BinOp::Eq)),
                Tok::Punct(Punct::Ne) => (6, Some(BinOp::Ne)),
                Tok::Punct(Punct::Lt) => (7, Some(BinOp::Lt)),
                Tok::Punct(Punct::Le) => (7, Some(BinOp::Le)),
                Tok::Punct(Punct::Gt) => (7, Some(BinOp::Gt)),
                Tok::Punct(Punct::Ge) => (7, Some(BinOp::Ge)),
                Tok::Punct(Punct::Shl) => (8, Some(BinOp::Shl)),
                Tok::Punct(Punct::Shr) => (8, Some(BinOp::Shr)),
                Tok::Punct(Punct::Plus) => (9, Some(BinOp::Add)),
                Tok::Punct(Punct::Minus) => (9, Some(BinOp::Sub)),
                Tok::Punct(Punct::Star) => (10, Some(BinOp::Mul)),
                Tok::Punct(Punct::Slash) => (10, Some(BinOp::Div)),
                Tok::Punct(Punct::Percent) => (10, Some(BinOp::Rem)),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = match kind {
                Some(op) => Expr::Binary(op, Box::new(lhs), Box::new(rhs)),
                None if prec == 1 => Expr::LogOr(Box::new(lhs), Box::new(rhs)),
                None => Expr::LogAnd(Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn parse_cast_unary(&mut self) -> Result<Expr, String> {
        // `(type) expr` — lookahead: '(' followed by a type start.
        if self.peek() == &Tok::Punct(Punct::LParen) {
            let save = self.pos;
            self.bump();
            if self.at_type_start() {
                let ty = self.parse_abstract_type()?;
                self.expect_punct(Punct::RParen)?;
                let e = self.parse_cast_unary()?;
                return Ok(Expr::Cast(ty, Box::new(e)));
            }
            self.pos = save;
        }
        self.parse_unary()
    }

    fn parse_unary(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Tok::Punct(Punct::Minus) => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_cast_unary()?)))
            }
            Tok::Punct(Punct::Tilde) => {
                self.bump();
                Ok(Expr::Unary(
                    UnOp::BitNot,
                    Box::new(self.parse_cast_unary()?),
                ))
            }
            Tok::Punct(Punct::Bang) => {
                self.bump();
                Ok(Expr::Unary(
                    UnOp::LogNot,
                    Box::new(self.parse_cast_unary()?),
                ))
            }
            Tok::Punct(Punct::Star) => {
                self.bump();
                Ok(Expr::Unary(UnOp::Deref, Box::new(self.parse_cast_unary()?)))
            }
            Tok::Punct(Punct::Amp) => {
                self.bump();
                Ok(Expr::Unary(
                    UnOp::AddrOf,
                    Box::new(self.parse_cast_unary()?),
                ))
            }
            Tok::Punct(Punct::Plus) => {
                self.bump();
                self.parse_cast_unary()
            }
            Tok::Punct(Punct::PlusPlus) => {
                self.bump();
                Ok(Expr::PreIncDec(Box::new(self.parse_unary()?), true))
            }
            Tok::Punct(Punct::MinusMinus) => {
                self.bump();
                Ok(Expr::PreIncDec(Box::new(self.parse_unary()?), false))
            }
            Tok::Ident(s) if s == "sizeof" => {
                self.bump();
                if self.peek() == &Tok::Punct(Punct::LParen) {
                    let save = self.pos;
                    self.bump();
                    if self.at_type_start() {
                        let ty = self.parse_abstract_type()?;
                        self.expect_punct(Punct::RParen)?;
                        return Ok(Expr::SizeofType(ty));
                    }
                    self.pos = save;
                }
                Ok(Expr::SizeofExpr(Box::new(self.parse_unary()?)))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, String> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                Tok::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Tok::Punct(Punct::Dot) => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = Expr::Member(Box::new(e), f, false);
                }
                Tok::Punct(Punct::Arrow) => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = Expr::Member(Box::new(e), f, true);
                }
                Tok::Punct(Punct::PlusPlus) => {
                    self.bump();
                    e = Expr::PostIncDec(Box::new(e), true);
                }
                Tok::Punct(Punct::MinusMinus) => {
                    self.bump();
                    e = Expr::PostIncDec(Box::new(e), false);
                }
                Tok::Punct(Punct::LParen) => {
                    let callee = match &e {
                        Expr::Ident(name) => name.clone(),
                        _ => return self.err("only direct calls are supported"),
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        let type_pos = type_arg_position(&callee);
                        let mut idx = 0;
                        loop {
                            if Some(idx) == type_pos {
                                args.push(Arg::Type(self.parse_abstract_type()?));
                            } else {
                                args.push(Arg::Expr(self.parse_assign_expr()?));
                            }
                            idx += 1;
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    e = Expr::Call(callee, args);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, String> {
        match self.bump() {
            Tok::Int(v, u, l) => Ok(Expr::IntLit(v, u, l)),
            Tok::Char(c) => Ok(Expr::CharLit(c)),
            Tok::Str(s) => Ok(Expr::StrLit(s)),
            Tok::Ident(s) => Ok(Expr::Ident(s)),
            Tok::Punct(Punct::LParen) => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(format!(
                "line {}: expected expression, got {other}",
                self.line()
            )),
        }
    }
}

fn base_type_from_keywords(kws: &[String]) -> Option<TypeExpr> {
    let has = |k: &str| kws.iter().any(|s| s == k);
    if has("void") {
        return Some(TypeExpr::Void);
    }
    if has("_Bool") || has("bool") {
        return Some(TypeExpr::Int(8, false));
    }
    let signed = !has("unsigned");
    if has("char") {
        return Some(TypeExpr::Int(8, signed));
    }
    if has("short") {
        return Some(TypeExpr::Int(16, signed));
    }
    if has("long") {
        return Some(TypeExpr::Int(64, signed));
    }
    // `int`, `unsigned`, `signed`.
    Some(TypeExpr::Int(32, signed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parse_globals_and_function() {
        let p = parse_src("int a; unsigned long cur = 0;\nint get(void) { return a; }\n");
        assert_eq!(p.items.len(), 3);
        assert!(matches!(&p.items[0], Item::Global { name, .. } if name == "a"));
        assert!(matches!(&p.items[2], Item::Func { name, body: Some(_), .. } if name == "get"));
    }

    #[test]
    fn parse_struct_and_typedef() {
        let p = parse_src(
            "struct file { unsigned long inode; struct perm *p; };\ntypedef unsigned long u64;\nu64 x;\n",
        );
        assert!(matches!(&p.items[0], Item::StructDef { fields, .. } if fields.len() == 2));
        assert!(matches!(&p.items[1], Item::Typedef { name, .. } if name == "u64"));
        assert!(matches!(&p.items[2], Item::Global { ty: TypeExpr::Named(n), .. } if n == "u64"));
    }

    #[test]
    fn parse_pointer_arithmetic_expr() {
        let p = parse_src("void f(char *p) { *(p + 4) = 0; }\n");
        match &p.items[0] {
            Item::Func { body: Some(b), .. } => {
                assert!(matches!(&b[0], Stmt::Expr(Expr::Assign(None, _, _))));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_spec_primitives() {
        let p = parse_src(
            "void spec__f(void) { any(unsigned int, n); assume(n > 0); assert(n != 0); }\n",
        );
        match &p.items[0] {
            Item::Func { body: Some(b), .. } => match &b[0] {
                Stmt::Expr(Expr::Call(name, args)) => {
                    assert_eq!(name, "any");
                    assert!(matches!(&args[0], Arg::Type(TypeExpr::Int(32, false))));
                    assert!(matches!(&args[1], Arg::Expr(Expr::Ident(n)) if n == "n"));
                }
                other => panic!("{other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parse_names_obj_with_array_type() {
        let p = parse_src("int inv__x(void) { return names_obj(p, char[4096]); }\n");
        match &p.items[0] {
            Item::Func { body: Some(b), .. } => match &b[0] {
                Stmt::Return(Some(Expr::Call(name, args))) => {
                    assert_eq!(name, "names_obj");
                    assert!(matches!(&args[1], Arg::Type(TypeExpr::Array(_, _))));
                }
                other => panic!("{other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parse_cast_vs_paren() {
        let p = parse_src("void f(void) { unsigned long x; char *p = (char *)x; int y = (x); }\n");
        match &p.items[0] {
            Item::Func { body: Some(b), .. } => {
                assert!(matches!(
                    &b[1],
                    Stmt::Decl(_, _, Some(Init::Scalar(Expr::Cast(_, _))))
                ));
                assert!(matches!(
                    &b[2],
                    Stmt::Decl(_, _, Some(Init::Scalar(Expr::Ident(_))))
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_control_flow() {
        let p = parse_src(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i % 2 == 0) s += i; else continue; } while (s > 100) { s--; break; } return s; }\n",
        );
        assert_eq!(p.items.len(), 1);
    }

    #[test]
    fn parse_ternary_and_logical() {
        let p = parse_src("int f(int a, int b) { return a && b ? a | b : a >> 2; }\n");
        match &p.items[0] {
            Item::Func { body: Some(b), .. } => {
                assert!(matches!(&b[0], Stmt::Return(Some(Expr::Ternary(_, _, _)))));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_enum() {
        let p = parse_src("enum { A, B = 5, C };\n");
        assert!(matches!(&p.items[0], Item::EnumDef { variants, .. } if variants.len() == 3));
    }

    #[test]
    fn parse_typedef_struct_anon() {
        let p = parse_src("typedef struct { int x; } pair_t;\npair_t g;\n");
        assert!(matches!(&p.items[0], Item::StructDef { .. }));
        assert!(matches!(&p.items[1], Item::Typedef { name, .. } if name == "pair_t"));
    }

    #[test]
    fn parse_multidim_array() {
        let p = parse_src("int table[4][8];\n");
        match &p.items[0] {
            Item::Global { ty, .. } => match ty {
                TypeExpr::Array(inner, _) => {
                    assert!(matches!(**inner, TypeExpr::Array(_, _)));
                }
                other => panic!("{other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parse_tpot_inv_call() {
        let p = parse_src("void f(void) { int i; __tpot_inv(&loopinv, &i, &i, sizeof(i)); }\n");
        match &p.items[0] {
            Item::Func { body: Some(b), .. } => {
                assert!(matches!(&b[1], Stmt::Expr(Expr::Call(n, _)) if n == "__tpot_inv"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_message_has_line() {
        let perr = parse(lex("int f() { return ; + }\n").unwrap()).unwrap_err();
        assert!(perr.contains("line"), "{perr}");
    }
}
