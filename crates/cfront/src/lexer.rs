//! Lexer for the C subset.

use crate::token::{Punct, SpannedTok, Tok};

/// Tokenizes preprocessed source.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, String> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut value: u128;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
                i += 2;
                let hstart = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                if i == hstart {
                    return Err(format!("line {line}: bad hex literal"));
                }
                value = u128::from_str_radix(&src[hstart..i], 16)
                    .map_err(|e| format!("line {line}: {e}"))?;
            } else {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                value = src[start..i]
                    .parse()
                    .map_err(|e| format!("line {line}: {e}"))?;
                if c == '0' && i - start > 1 {
                    // Octal: reparse.
                    value = u128::from_str_radix(&src[start + 1..i], 8)
                        .map_err(|e| format!("line {line}: bad octal: {e}"))?;
                }
            }
            let mut unsigned = false;
            let mut long = false;
            while i < bytes.len() {
                match bytes[i] | 0x20 {
                    b'u' => {
                        unsigned = true;
                        i += 1;
                    }
                    b'l' => {
                        long = true;
                        i += 1;
                    }
                    _ => break,
                }
            }
            out.push(SpannedTok {
                tok: Tok::Int(value, unsigned, long),
                line,
            });
            continue;
        }
        if c == '\'' {
            i += 1;
            let v = if bytes[i] == b'\\' {
                i += 1;
                let e =
                    unescape(bytes[i] as char).ok_or_else(|| format!("line {line}: bad escape"))?;
                i += 1;
                e
            } else {
                let v = bytes[i];
                i += 1;
                v
            };
            if i >= bytes.len() || bytes[i] != b'\'' {
                return Err(format!("line {line}: unterminated char literal"));
            }
            i += 1;
            out.push(SpannedTok {
                tok: Tok::Char(v),
                line,
            });
            continue;
        }
        if c == '"' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(format!("line {line}: unterminated string"));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        let e = unescape(bytes[i] as char)
                            .ok_or_else(|| format!("line {line}: bad escape"))?;
                        s.push(e as char);
                        i += 1;
                    }
                    b => {
                        s.push(b as char);
                        i += 1;
                    }
                }
            }
            out.push(SpannedTok {
                tok: Tok::Str(s),
                line,
            });
            continue;
        }
        // Punctuation, longest-match first.
        let rest = &src[i..];
        let (p, len) =
            match_punct(rest).ok_or_else(|| format!("line {line}: unexpected character {c:?}"))?;
        out.push(SpannedTok {
            tok: Tok::Punct(p),
            line,
        });
        i += len;
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

fn unescape(c: char) -> Option<u8> {
    Some(match c {
        'n' => b'\n',
        't' => b'\t',
        'r' => b'\r',
        '0' => 0,
        '\\' => b'\\',
        '\'' => b'\'',
        '"' => b'"',
        _ => return None,
    })
}

fn match_punct(s: &str) -> Option<(Punct, usize)> {
    use Punct::*;
    let three: &[(&str, Punct)] = &[("<<=", ShlAssign), (">>=", ShrAssign), ("...", Ellipsis)];
    for (pat, p) in three {
        if s.starts_with(pat) {
            return Some((*p, 3));
        }
    }
    let two: &[(&str, Punct)] = &[
        ("->", Arrow),
        ("++", PlusPlus),
        ("--", MinusMinus),
        ("<<", Shl),
        (">>", Shr),
        ("<=", Le),
        (">=", Ge),
        ("==", EqEq),
        ("!=", Ne),
        ("&&", AmpAmp),
        ("||", PipePipe),
        ("+=", PlusAssign),
        ("-=", MinusAssign),
        ("*=", StarAssign),
        ("/=", SlashAssign),
        ("%=", PercentAssign),
        ("&=", AmpAssign),
        ("|=", PipeAssign),
        ("^=", CaretAssign),
    ];
    for (pat, p) in two {
        if s.starts_with(pat) {
            return Some((*p, 2));
        }
    }
    let one = match s.as_bytes()[0] {
        b'(' => LParen,
        b')' => RParen,
        b'{' => LBrace,
        b'}' => RBrace,
        b'[' => LBracket,
        b']' => RBracket,
        b';' => Semi,
        b',' => Comma,
        b'.' => Dot,
        b'+' => Plus,
        b'-' => Minus,
        b'*' => Star,
        b'/' => Slash,
        b'%' => Percent,
        b'&' => Amp,
        b'|' => Pipe,
        b'^' => Caret,
        b'~' => Tilde,
        b'!' => Bang,
        b'<' => Lt,
        b'>' => Gt,
        b'=' => Assign,
        b'?' => Question,
        b':' => Colon,
        _ => return None,
    };
    Some((one, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        let t = toks("int x = 42;");
        assert_eq!(
            t,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct(Punct::Assign),
                Tok::Int(42, false, false),
                Tok::Punct(Punct::Semi),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn hex_and_suffixes() {
        let t = toks("0xfful 077 1U");
        assert_eq!(t[0], Tok::Int(0xff, true, true));
        assert_eq!(t[1], Tok::Int(0o77, false, false));
        assert_eq!(t[2], Tok::Int(1, true, false));
    }

    #[test]
    fn multichar_puncts() {
        let t = toks("a->b <<= 1 >> 2 != 3");
        assert!(t.contains(&Tok::Punct(Punct::Arrow)));
        assert!(t.contains(&Tok::Punct(Punct::ShlAssign)));
        assert!(t.contains(&Tok::Punct(Punct::Shr)));
        assert!(t.contains(&Tok::Punct(Punct::Ne)));
    }

    #[test]
    fn strings_and_chars() {
        let t = toks(r#""hi\n" 'a' '\0'"#);
        assert_eq!(t[0], Tok::Str("hi\n".into()));
        assert_eq!(t[1], Tok::Char(b'a'));
        assert_eq!(t[2], Tok::Char(0));
    }

    #[test]
    fn line_numbers() {
        let lexed = lex("a\nb\n\nc").unwrap();
        assert_eq!(lexed[0].line, 1);
        assert_eq!(lexed[1].line, 2);
        assert_eq!(lexed[2].line, 4);
    }

    #[test]
    fn error_on_garbage() {
        assert!(lex("int @").is_err());
    }
}
