//! A small preprocessor: comment stripping and object-like `#define`.
//!
//! The evaluation targets use `#define` for configuration constants
//! (`PAGE_SIZE`, `MAX_FILES`, `NULL`, …). Function-like macros are not
//! supported — the targets use real (inlined-by-TPot) functions instead,
//! which is also what the paper's methodology favors. `#ifdef`/`#if` with
//! defined-ness checks are supported in the minimal form the targets need.

use std::collections::HashMap;

/// Strips comments and expands object-like macros.
///
/// Supported directives: `#define NAME tokens…`, `#undef NAME`,
/// `#ifdef NAME` / `#ifndef NAME` / `#else` / `#endif`.
pub fn preprocess(src: &str) -> Result<String, String> {
    let no_comments = strip_comments(src)?;
    let mut defines: HashMap<String, String> = HashMap::new();
    let mut out = String::with_capacity(no_comments.len());
    // Stack of "currently emitting?" flags for conditional nesting.
    let mut emit_stack: Vec<bool> = Vec::new();
    for (lineno, line) in no_comments.lines().enumerate() {
        let trimmed = line.trim_start();
        let emitting = emit_stack.iter().all(|&e| e);
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(def) = rest.strip_prefix("define") {
                if emitting {
                    let def = def.trim();
                    let (name, body) = split_ident(def)
                        .ok_or_else(|| format!("line {}: bad #define", lineno + 1))?;
                    if body.starts_with('(') {
                        return Err(format!(
                            "line {}: function-like macros are not supported ({name})",
                            lineno + 1
                        ));
                    }
                    defines.insert(name.to_string(), body.trim().to_string());
                }
            } else if let Some(name) = rest.strip_prefix("undef") {
                if emitting {
                    defines.remove(name.trim());
                }
            } else if let Some(name) = rest.strip_prefix("ifndef") {
                emit_stack.push(!defines.contains_key(name.trim()));
            } else if let Some(name) = rest.strip_prefix("ifdef") {
                emit_stack.push(defines.contains_key(name.trim()));
            } else if rest.starts_with("else") {
                let top = emit_stack
                    .last_mut()
                    .ok_or_else(|| format!("line {}: #else without #if", lineno + 1))?;
                *top = !*top;
            } else if rest.starts_with("endif") {
                emit_stack
                    .pop()
                    .ok_or_else(|| format!("line {}: #endif without #if", lineno + 1))?;
            } else if rest.starts_with("include") {
                // Single-translation-unit model: includes are stitched by the
                // caller; the directive is ignored.
            } else {
                return Err(format!(
                    "line {}: unsupported directive #{rest}",
                    lineno + 1
                ));
            }
            out.push('\n'); // keep line numbers stable
            continue;
        }
        if !emitting {
            out.push('\n');
            continue;
        }
        out.push_str(&expand_line(line, &defines, 0)?);
        out.push('\n');
    }
    if !emit_stack.is_empty() {
        return Err("unterminated #ifdef/#ifndef".into());
    }
    Ok(out)
}

fn split_ident(s: &str) -> Option<(&str, &str)> {
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    Some((&s[..end], &s[end..]))
}

/// Expands macros in a single line, identifier-wise (no expansion inside
/// string literals). Recursion depth is bounded to catch cycles.
fn expand_line(
    line: &str,
    defines: &HashMap<String, String>,
    depth: u32,
) -> Result<String, String> {
    if depth > 32 {
        return Err("macro expansion too deep (cycle?)".into());
    }
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '"' {
            // Copy string literal verbatim.
            out.push(c);
            i += 1;
            while i < bytes.len() {
                let d = bytes[i] as char;
                out.push(d);
                i += 1;
                if d == '\\' && i < bytes.len() {
                    out.push(bytes[i] as char);
                    i += 1;
                } else if d == '"' {
                    break;
                }
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &line[start..i];
            if let Some(body) = defines.get(word) {
                out.push_str(&expand_line(body, defines, depth + 1)?);
            } else {
                out.push_str(word);
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    Ok(out)
}

/// Removes `//` and `/* */` comments, preserving newlines for line numbers.
fn strip_comments(src: &str) -> Result<String, String> {
    let mut out = String::with_capacity(src.len());
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err("unterminated block comment".into());
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
        } else if c == '"' {
            out.push(c);
            i += 1;
            while i < bytes.len() {
                let d = bytes[i] as char;
                out.push(d);
                i += 1;
                if d == '\\' && i < bytes.len() {
                    out.push(bytes[i] as char);
                    i += 1;
                } else if d == '"' {
                    break;
                }
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defines_expand() {
        let src = "#define N 4\nint a[N];\n";
        let out = preprocess(src).unwrap();
        assert!(out.contains("int a[4];"));
    }

    #[test]
    fn nested_defines() {
        let src = "#define A 2\n#define B (A * 3)\nint x = B;\n";
        let out = preprocess(src).unwrap();
        assert!(out.contains("int x = (2 * 3);"));
    }

    #[test]
    fn comments_stripped() {
        let src = "int /* c */ x; // trailing\nint y;\n";
        let out = preprocess(src).unwrap();
        assert!(out.contains("int  x; "));
        assert!(out.contains("int y;"));
        assert!(!out.contains("trailing"));
    }

    #[test]
    fn no_expansion_in_strings() {
        let src = "#define p q\nchar *s = \"p\";\n";
        let out = preprocess(src).unwrap();
        assert!(out.contains("\"p\""));
    }

    #[test]
    fn conditionals() {
        let src =
            "#define X 1\n#ifdef X\nint a;\n#else\nint b;\n#endif\n#ifndef X\nint c;\n#endif\n";
        let out = preprocess(src).unwrap();
        assert!(out.contains("int a;"));
        assert!(!out.contains("int b;"));
        assert!(!out.contains("int c;"));
    }

    #[test]
    fn function_like_macro_rejected() {
        let src = "#define F(x) (x+1)\n";
        assert!(preprocess(src).is_err());
    }

    #[test]
    fn cycle_detected() {
        let src = "#define A B\n#define B A\nint x = A;\n";
        assert!(preprocess(src).is_err());
    }

    #[test]
    fn line_numbers_preserved() {
        let src = "#define N 1\n\nint x;\n";
        let out = preprocess(src).unwrap();
        assert_eq!(out.lines().count(), 3);
        assert_eq!(out.lines().nth(2), Some("int x;"));
    }
}
