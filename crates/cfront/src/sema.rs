//! Semantic analysis: name resolution, type checking, and desugaring into a
//! typed HIR.
//!
//! The HIR makes everything the symbolic executor needs explicit:
//! - every implicit conversion is a [`TExprKind::Cast`],
//! - pointer arithmetic is scaled by `sizeof` at check time,
//! - `a[i]`, `s.f`, `p->f` desugar into explicit address arithmetic plus
//!   [`TPlaceKind::Deref`],
//! - the eight TPot specification primitives (paper Table 2) plus
//!   `malloc`/`free`/`__tpot_inv` become [`Builtin`] calls with typed
//!   arguments.

use std::collections::HashMap;

use crate::ast::{Arg, BinOp, Expr, Init, Item, Program, Stmt, TypeExpr, UnOp};
use crate::types::{StructLayouts, Type};

/// A semantic error with a message.
#[derive(Clone, Debug)]
pub struct SemaError(pub String);

impl std::fmt::Display for SemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

type Res<T> = Result<T, SemaError>;

fn err<T>(msg: impl Into<String>) -> Res<T> {
    Err(SemaError(msg.into()))
}

/// Built-in functions, including the eight TPot specification primitives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Builtin {
    /// `malloc(size)`.
    Malloc,
    /// `free(p)`.
    Free,
    /// ③ `assert(cond)`.
    Assert,
    /// ② `assume(cond)`.
    Assume,
    /// ① `any(type, name)` — declares a fresh symbolic local.
    Any,
    /// ④ `points_to(ptr, type, name)`.
    PointsTo,
    /// ⑥ `names_obj_forall(ptr_f, type)`.
    NamesObjForall,
    /// ⑦ `forall_elem(arr, cond, extras…)`.
    ForallElem,
    /// `assert(forall_elem(…))` — universally *checked* (skolemized).
    ForallElemAssert,
    /// `assume(forall_elem(…))` — universally *assumed* (deferred marker).
    ForallElemAssume,
    /// ⑧ `names_obj_forall_cond(ptr_f, type, cond)`.
    NamesObjForallCond,
    /// `__tpot_inv(&inv, args…, (ptr, size)…)` — loop invariant.
    TpotInv,
    /// Havoc a global's contents (used by the modular baseline verifier's
    /// contract stubs; not reachable from C source).
    HavocGlobal,
}

/// Typed builtin argument.
#[derive(Clone, Debug)]
pub enum TArg {
    /// Ordinary expression.
    Expr(TExpr),
    /// Resolved type argument (spec primitives).
    Type(Type),
    /// String literal (object names).
    Str(String),
    /// Reference to a named function.
    FuncRef(String),
}

/// Typed unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TUnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    BitNot,
}

/// Typed binary operators (signedness resolved).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TBinOp {
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrA,
    ShrL,
    Eq,
    Ne,
    LtS,
    LtU,
    LeS,
    LeU,
}

impl TBinOp {
    /// True for comparison operators (result is `int` 0/1).
    pub fn is_cmp(&self) -> bool {
        matches!(
            self,
            TBinOp::Eq | TBinOp::Ne | TBinOp::LtS | TBinOp::LtU | TBinOp::LeS | TBinOp::LeU
        )
    }
}

/// Cast kinds between scalar widths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CastKind {
    /// Zero-extend (source unsigned or pointer).
    ZExt,
    /// Sign-extend.
    SExt,
    /// Truncate to a narrower width.
    Trunc,
    /// Same width (pointer↔integer, signedness change).
    NoOp,
}

/// A typed expression.
#[derive(Clone, Debug)]
pub struct TExpr {
    /// Result type (always scalar for rvalues).
    pub ty: Type,
    /// Node kind.
    pub kind: TExprKind,
}

/// Typed expression kinds.
#[derive(Clone, Debug)]
pub enum TExprKind {
    /// Integer constant (two's-complement value).
    Const(i128),
    /// Read of a place; array-typed places never appear here (they decay).
    Load(Box<TPlace>),
    /// Address of a place.
    AddrOf(Box<TPlace>),
    /// Unary arithmetic.
    Unary(TUnOp, Box<TExpr>),
    /// Binary arithmetic/comparison.
    Binary(TBinOp, Box<TExpr>, Box<TExpr>),
    /// Short-circuit and.
    LogAnd(Box<TExpr>, Box<TExpr>),
    /// Short-circuit or.
    LogOr(Box<TExpr>, Box<TExpr>),
    /// `c ? t : e` with scalar branches.
    Ternary(Box<TExpr>, Box<TExpr>, Box<TExpr>),
    /// Width/signedness conversion.
    Cast(CastKind, Box<TExpr>),
    /// Call to a user-defined function.
    Call(String, Vec<TExpr>),
    /// Builtin / specification primitive.
    Builtin(Builtin, Vec<TArg>),
    /// Assignment (evaluates to the stored value).
    Assign(Box<TPlace>, Box<TExpr>),
    /// `++`/`--`; `delta` is pre-scaled for pointers; `post` selects the
    /// postfix result.
    IncDec {
        /// Updated place.
        place: Box<TPlace>,
        /// Signed delta added to the place.
        delta: i128,
        /// True for postfix (result is the old value).
        post: bool,
    },
}

/// A typed place (lvalue).
#[derive(Clone, Debug)]
pub struct TPlace {
    /// Type of the stored value.
    pub ty: Type,
    /// Place kind.
    pub kind: TPlaceKind,
}

/// Place kinds.
#[derive(Clone, Debug)]
pub enum TPlaceKind {
    /// Function-local slot.
    Local(usize),
    /// Global variable by name.
    Global(String),
    /// Dereference of a pointer-typed expression.
    Deref(Box<TExpr>),
}

/// Typed statements.
#[derive(Clone, Debug)]
pub enum TStmt {
    /// Expression statement.
    Expr(TExpr),
    /// Scalar initialization of a local slot.
    Init(usize, TExpr),
    /// Aggregate initialization: scalar writes at byte offsets into a slot.
    InitList(usize, Vec<(u64, TExpr)>),
    /// `if`.
    If(TExpr, Vec<TStmt>, Vec<TStmt>),
    /// `while`.
    While(TExpr, Vec<TStmt>),
    /// `for`.
    For(Option<Box<TStmt>>, Option<TExpr>, Option<TExpr>, Vec<TStmt>),
    /// `return`.
    Return(Option<TExpr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// Nested block.
    Block(Vec<TStmt>),
}

/// A function-local storage slot.
#[derive(Clone, Debug)]
pub struct LocalSlot {
    /// Declared name (for diagnostics and counterexamples).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Size in bytes.
    pub size: u64,
}

/// A type-checked function.
#[derive(Clone, Debug)]
pub struct TFunc {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Number of parameters (the first `n_params` slots).
    pub n_params: usize,
    /// All local slots (parameters first).
    pub locals: Vec<LocalSlot>,
    /// Body statements (`None` = prototype only).
    pub body: Option<Vec<TStmt>>,
}

/// A checked global variable.
#[derive(Clone, Debug)]
pub struct GlobalInfo {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Size in bytes.
    pub size: u64,
    /// Constant scalar initializer writes `(offset, width_bits, value)`;
    /// everything else is zero.
    pub init: Vec<(u64, u32, i128)>,
    /// Declared `extern` (still allocated by the engine, like KLEE does for
    /// whole-component analysis).
    pub is_extern: bool,
}

/// A fully type-checked translation unit.
#[derive(Clone, Debug, Default)]
pub struct CheckedProgram {
    /// Struct layouts.
    pub layouts: StructLayouts,
    /// Globals in declaration order.
    pub globals: Vec<GlobalInfo>,
    /// Functions in declaration order.
    pub funcs: Vec<TFunc>,
    /// Function name → index in `funcs`.
    pub func_index: HashMap<String, usize>,
    /// Enum constants.
    pub enum_consts: HashMap<String, i128>,
}

impl CheckedProgram {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&TFunc> {
        self.func_index.get(name).map(|&i| &self.funcs[i])
    }

    /// Names of all POTs (`spec__*` functions with bodies).
    pub fn pot_names(&self) -> Vec<String> {
        self.funcs
            .iter()
            .filter(|f| f.name.starts_with("spec__") && f.body.is_some())
            .map(|f| f.name.clone())
            .collect()
    }

    /// Names of all global invariants (`inv__*`).
    pub fn invariant_names(&self) -> Vec<String> {
        self.funcs
            .iter()
            .filter(|f| f.name.starts_with("inv__") && f.body.is_some())
            .map(|f| f.name.clone())
            .collect()
    }
}

/// Type-checks a parsed program.
pub fn analyze(prog: Program) -> Res<CheckedProgram> {
    let mut cx = Cx::default();
    // Pass 0: collect typedefs, struct defs (in order), enum constants.
    for item in &prog.items {
        match item {
            Item::Typedef { name, ty } => {
                cx.typedefs.insert(name.clone(), ty.clone());
            }
            Item::EnumDef { variants, .. } => {
                let mut next: i128 = 0;
                for (vname, e) in variants {
                    let v = match e {
                        Some(e) => cx.eval_const(e)?,
                        None => next,
                    };
                    cx.out.enum_consts.insert(vname.clone(), v);
                    next = v + 1;
                }
            }
            _ => {}
        }
    }
    for item in &prog.items {
        if let Item::StructDef { name, fields } = item {
            let resolved: Vec<(String, Type)> = fields
                .iter()
                .map(|(t, n)| Ok((n.clone(), cx.resolve_type(t)?)))
                .collect::<Res<_>>()?;
            cx.out.layouts.define(name, resolved);
        }
    }
    // Pass 1: globals and function signatures.
    for item in &prog.items {
        match item {
            Item::Global {
                ty,
                name,
                init,
                is_extern,
            } => {
                let rty = cx.resolve_type(ty)?;
                let size = rty.size(&cx.out.layouts);
                let init_writes = match init {
                    None => Vec::new(),
                    Some(i) => cx.eval_global_init(&rty, i)?,
                };
                // `extern` re-declarations of an existing definition merge.
                if let Some(g) = cx.out.globals.iter().position(|g| &g.name == name) {
                    if !is_extern {
                        cx.out.globals[g].is_extern = false;
                        cx.out.globals[g].init = init_writes;
                    }
                    continue;
                }
                cx.globals_by_name.insert(name.clone(), rty.clone());
                cx.out.globals.push(GlobalInfo {
                    name: name.clone(),
                    ty: rty,
                    size,
                    init: init_writes,
                    is_extern: *is_extern,
                });
            }
            Item::Func {
                ret, name, params, ..
            } => {
                let rret = cx.resolve_type(ret)?;
                let rparams: Vec<(String, Type)> = params
                    .iter()
                    .map(|(t, n)| Ok((n.clone(), cx.resolve_type(t)?.decayed())))
                    .collect::<Res<_>>()?;
                cx.func_sigs.insert(name.clone(), (rret, rparams));
            }
            _ => {}
        }
    }
    // Pass 2: function bodies.
    for item in &prog.items {
        if let Item::Func {
            name, params, body, ..
        } = item
        {
            if cx.out.func_index.contains_key(name) {
                // A definition may follow a prototype; replace the prototype.
                if body.is_none() {
                    continue;
                }
            }
            let (ret, rparams) = cx.func_sigs[name].clone();
            let mut fx = FnCx {
                cx: &mut cx,
                locals: Vec::new(),
                scopes: vec![HashMap::new()],
                ret: ret.clone(),
            };
            for (pname, pty) in &rparams {
                fx.declare_local(pname, pty.clone())?;
            }
            let tbody = match body {
                None => None,
                Some(stmts) => Some(fx.check_stmts(stmts)?),
            };
            let locals = fx.locals;
            let tf = TFunc {
                name: name.clone(),
                ret,
                n_params: rparams.len(),
                locals,
                body: tbody,
            };
            let _ = params;
            if let Some(&i) = cx.out.func_index.get(name) {
                cx.out.funcs[i] = tf;
            } else {
                cx.out.func_index.insert(name.clone(), cx.out.funcs.len());
                cx.out.funcs.push(tf);
            }
        }
    }
    Ok(cx.out)
}

#[derive(Default)]
struct Cx {
    out: CheckedProgram,
    typedefs: HashMap<String, TypeExpr>,
    globals_by_name: HashMap<String, Type>,
    func_sigs: HashMap<String, (Type, Vec<(String, Type)>)>,
}

impl Cx {
    fn resolve_type(&self, t: &TypeExpr) -> Res<Type> {
        match t {
            TypeExpr::Void => Ok(Type::Void),
            TypeExpr::Int(w, s) => Ok(Type::Int {
                width: *w,
                signed: *s,
            }),
            TypeExpr::Named(n) => match self.typedefs.get(n) {
                Some(inner) => self.resolve_type(inner),
                None => {
                    builtin_typedef(n).ok_or_else(|| SemaError(format!("unknown type name {n}")))
                }
            },
            TypeExpr::Struct(n) => self
                .out
                .layouts
                .lookup(n)
                .map(Type::Struct)
                .ok_or_else(|| SemaError(format!("unknown struct {n}"))),
            TypeExpr::Ptr(inner) => Ok(Type::Ptr(Box::new(self.resolve_type(inner)?))),
            TypeExpr::Array(inner, len) => {
                let l = self.eval_const(len)?;
                if l < 0 {
                    return err("negative array length");
                }
                Ok(Type::Array(Box::new(self.resolve_type(inner)?), l as u64))
            }
        }
    }

    /// Compile-time constant evaluation (array lengths, enum values, global
    /// initializers).
    fn eval_const(&self, e: &Expr) -> Res<i128> {
        match e {
            Expr::IntLit(v, _, _) => Ok(*v as i128),
            Expr::CharLit(c) => Ok(*c as i128),
            Expr::Ident(n) => self
                .out
                .enum_consts
                .get(n)
                .copied()
                .ok_or_else(|| SemaError(format!("not a constant: {n}"))),
            Expr::Unary(UnOp::Neg, e) => Ok(-self.eval_const(e)?),
            Expr::Unary(UnOp::BitNot, e) => Ok(!self.eval_const(e)?),
            Expr::Unary(UnOp::LogNot, e) => Ok((self.eval_const(e)? == 0) as i128),
            Expr::Binary(op, a, b) => {
                let (x, y) = (self.eval_const(a)?, self.eval_const(b)?);
                Ok(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0 {
                            return err("constant division by zero");
                        }
                        x / y
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return err("constant remainder by zero");
                        }
                        x % y
                    }
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x << y,
                    BinOp::Shr => x >> y,
                    BinOp::Lt => (x < y) as i128,
                    BinOp::Le => (x <= y) as i128,
                    BinOp::Gt => (x > y) as i128,
                    BinOp::Ge => (x >= y) as i128,
                    BinOp::Eq => (x == y) as i128,
                    BinOp::Ne => (x != y) as i128,
                })
            }
            Expr::Ternary(c, t, f) => {
                if self.eval_const(c)? != 0 {
                    self.eval_const(t)
                } else {
                    self.eval_const(f)
                }
            }
            Expr::Cast(ty, e) => {
                let v = self.eval_const(e)?;
                let t = self.resolve_type(ty)?;
                Ok(mask_to_type(v, &t))
            }
            Expr::SizeofType(t) => Ok(self.resolve_type(t)?.size(&self.out.layouts) as i128),
            Expr::SizeofExpr(_) => err("sizeof expr not supported in constants"),
            other => err(format!("not a constant expression: {other:?}")),
        }
    }

    /// Flattens a global initializer into (offset, width, value) writes.
    fn eval_global_init(&self, ty: &Type, init: &Init) -> Res<Vec<(u64, u32, i128)>> {
        let mut out = Vec::new();
        self.flatten_init(ty, init, 0, &mut out)?;
        Ok(out)
    }

    fn flatten_init(
        &self,
        ty: &Type,
        init: &Init,
        base: u64,
        out: &mut Vec<(u64, u32, i128)>,
    ) -> Res<()> {
        match (ty, init) {
            (t, Init::Scalar(e)) if t.is_scalar() => {
                let v = self.eval_const(e)?;
                out.push((base, t.bit_width(), mask_to_type(v, t)));
                Ok(())
            }
            (Type::Array(elem, n), Init::List(items)) => {
                if items.len() as u64 > *n {
                    return err("too many array initializers");
                }
                let esz = elem.size(&self.out.layouts);
                for (i, item) in items.iter().enumerate() {
                    self.flatten_init(elem, item, base + i as u64 * esz, out)?;
                }
                Ok(())
            }
            (Type::Struct(si), Init::List(items)) => {
                let info = self.out.layouts.structs[*si].clone();
                if items.len() > info.fields.len() {
                    return err("too many struct initializers");
                }
                for (field, item) in info.fields.iter().zip(items) {
                    self.flatten_init(&field.ty, item, base + field.offset, out)?;
                }
                Ok(())
            }
            _ => err(format!("bad initializer for type {ty}")),
        }
    }
}

fn builtin_typedef(n: &str) -> Option<Type> {
    let t = match n {
        "uint8_t" | "u8" => Type::Int {
            width: 8,
            signed: false,
        },
        "int8_t" | "s8" => Type::Int {
            width: 8,
            signed: true,
        },
        "uint16_t" | "u16" => Type::Int {
            width: 16,
            signed: false,
        },
        "int16_t" | "s16" => Type::Int {
            width: 16,
            signed: true,
        },
        "uint32_t" | "u32" => Type::Int {
            width: 32,
            signed: false,
        },
        "int32_t" | "s32" => Type::Int {
            width: 32,
            signed: true,
        },
        "uint64_t" | "u64" | "size_t" | "uintptr_t" | "phys_addr_t" => Type::ULONG,
        "int64_t" | "s64" | "ssize_t" | "intptr_t" | "ptrdiff_t" => Type::Int {
            width: 64,
            signed: true,
        },
        _ => return None,
    };
    Some(t)
}

fn mask_to_type(v: i128, t: &Type) -> i128 {
    let w = t.bit_width();
    if w == 128 {
        return v;
    }
    let masked = (v as u128) & ((1u128 << w) - 1);
    if t.is_signed() && (masked >> (w - 1)) & 1 == 1 {
        (masked as i128) - (1i128 << w)
    } else {
        masked as i128
    }
}

struct FnCx<'a> {
    cx: &'a mut Cx,
    locals: Vec<LocalSlot>,
    scopes: Vec<HashMap<String, usize>>,
    ret: Type,
}

impl<'a> FnCx<'a> {
    fn declare_local(&mut self, name: &str, ty: Type) -> Res<usize> {
        let size = ty.size(&self.cx.out.layouts);
        let slot = self.locals.len();
        self.locals.push(LocalSlot {
            name: name.to_string(),
            ty,
            size,
        });
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), slot);
        Ok(slot)
    }

    fn lookup_local(&self, name: &str) -> Option<usize> {
        for scope in self.scopes.iter().rev() {
            if let Some(&s) = scope.get(name) {
                return Some(s);
            }
        }
        None
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) -> Res<Vec<TStmt>> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.push(self.check_stmt(s)?);
        }
        Ok(out)
    }

    fn check_stmt(&mut self, s: &Stmt) -> Res<TStmt> {
        match s {
            Stmt::Decl(ty, name, init) => {
                let rty = self.cx.resolve_type(ty)?;
                let slot = self.declare_local(name, rty.clone())?;
                match init {
                    None => Ok(TStmt::Block(vec![])),
                    Some(Init::Scalar(e)) => {
                        let te = self.check_expr(e)?;
                        let te = self.coerce(te, &rty)?;
                        Ok(TStmt::Init(slot, te))
                    }
                    Some(list @ Init::List(_)) => {
                        let mut writes = Vec::new();
                        self.flatten_local_init(&rty, list, 0, &mut writes)?;
                        Ok(TStmt::InitList(slot, writes))
                    }
                }
            }
            Stmt::Expr(e) => Ok(TStmt::Expr(self.check_expr(e)?)),
            Stmt::If(c, t, e) => {
                let tc = self.check_cond(c)?;
                self.scopes.push(HashMap::new());
                let tt = vec![self.check_stmt(t)?];
                self.scopes.pop();
                self.scopes.push(HashMap::new());
                let te = match e {
                    Some(e) => vec![self.check_stmt(e)?],
                    None => vec![],
                };
                self.scopes.pop();
                Ok(TStmt::If(tc, tt, te))
            }
            Stmt::While(c, body) => {
                let tc = self.check_cond(c)?;
                self.scopes.push(HashMap::new());
                let tb = vec![self.check_stmt(body)?];
                self.scopes.pop();
                Ok(TStmt::While(tc, tb))
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                let ti = match init {
                    Some(s) => Some(Box::new(self.check_stmt(s)?)),
                    None => None,
                };
                let tc = match cond {
                    Some(c) => Some(self.check_cond(c)?),
                    None => None,
                };
                let ts = match step {
                    Some(e) => Some(self.check_expr(e)?),
                    None => None,
                };
                let tb = vec![self.check_stmt(body)?];
                self.scopes.pop();
                Ok(TStmt::For(ti, tc, ts, tb))
            }
            Stmt::Return(e) => match e {
                None => Ok(TStmt::Return(None)),
                Some(e) => {
                    let te = self.check_expr(e)?;
                    let ret = self.ret.clone();
                    let te = self.coerce(te, &ret)?;
                    Ok(TStmt::Return(Some(te)))
                }
            },
            Stmt::Break => Ok(TStmt::Break),
            Stmt::Continue => Ok(TStmt::Continue),
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                let out = self.check_stmts(stmts)?;
                self.scopes.pop();
                Ok(TStmt::Block(out))
            }
            Stmt::Seq(stmts) => Ok(TStmt::Block(self.check_stmts(stmts)?)),
        }
    }

    fn flatten_local_init(
        &mut self,
        ty: &Type,
        init: &Init,
        base: u64,
        out: &mut Vec<(u64, TExpr)>,
    ) -> Res<()> {
        match (ty, init) {
            (t, Init::Scalar(e)) if t.is_scalar() => {
                let te = self.check_expr(e)?;
                let te = self.coerce(te, t)?;
                out.push((base, te));
                Ok(())
            }
            (Type::Array(elem, n), Init::List(items)) => {
                if items.len() as u64 > *n {
                    return err("too many array initializers");
                }
                let esz = elem.size(&self.cx.out.layouts);
                for (i, item) in items.iter().enumerate() {
                    self.flatten_local_init(elem, item, base + i as u64 * esz, out)?;
                }
                Ok(())
            }
            (Type::Struct(si), Init::List(items)) => {
                let info = self.cx.out.layouts.structs[*si].clone();
                for (field, item) in info.fields.iter().zip(items) {
                    self.flatten_local_init(&field.ty, item, base + field.offset, out)?;
                }
                Ok(())
            }
            _ => err(format!("bad local initializer for {ty}")),
        }
    }

    /// Checks a condition: any scalar expression.
    fn check_cond(&mut self, e: &Expr) -> Res<TExpr> {
        let te = self.check_expr(e)?;
        if !te.ty.is_scalar() {
            return err(format!("condition must be scalar, got {}", te.ty));
        }
        Ok(te)
    }

    // -------------------------------------------------------------- places

    /// Checks an expression as a place (lvalue).
    fn check_place(&mut self, e: &Expr) -> Res<TPlace> {
        match e {
            Expr::Ident(n) => {
                if let Some(slot) = self.lookup_local(n) {
                    return Ok(TPlace {
                        ty: self.locals[slot].ty.clone(),
                        kind: TPlaceKind::Local(slot),
                    });
                }
                if let Some(ty) = self.cx.globals_by_name.get(n) {
                    return Ok(TPlace {
                        ty: ty.clone(),
                        kind: TPlaceKind::Global(n.clone()),
                    });
                }
                err(format!("unknown variable {n}"))
            }
            Expr::Unary(UnOp::Deref, inner) => {
                let p = self.check_expr(inner)?;
                match p.ty.clone() {
                    Type::Ptr(pointee) => Ok(TPlace {
                        ty: (*pointee).clone(),
                        kind: TPlaceKind::Deref(Box::new(p)),
                    }),
                    other => err(format!("dereference of non-pointer {other}")),
                }
            }
            Expr::Index(base, idx) => {
                let addr = self.index_addr(base, idx)?;
                match addr.ty.clone() {
                    Type::Ptr(pointee) => Ok(TPlace {
                        ty: (*pointee).clone(),
                        kind: TPlaceKind::Deref(Box::new(addr)),
                    }),
                    _ => unreachable!(),
                }
            }
            Expr::Member(base, field, arrow) => {
                let (sptr, sidx) = if *arrow {
                    let b = self.check_expr(base)?;
                    match b.ty.clone() {
                        Type::Ptr(p) => match *p {
                            Type::Struct(si) => (b, si),
                            other => return err(format!("-> on pointer to non-struct {other}")),
                        },
                        other => return err(format!("-> on non-pointer {other}")),
                    }
                } else {
                    let place = self.check_place(base)?;
                    let si = match place.ty {
                        Type::Struct(si) => si,
                        ref other => return err(format!(". on non-struct {other}")),
                    };
                    let addr = TExpr {
                        ty: Type::Ptr(Box::new(place.ty.clone())),
                        kind: TExprKind::AddrOf(Box::new(place)),
                    };
                    (addr, si)
                };
                let finfo = self.cx.out.layouts.structs[sidx]
                    .field(field)
                    .cloned()
                    .ok_or_else(|| SemaError(format!("no field {field}")))?;
                let fty = finfo.ty.clone();
                let addr = self.add_const_offset(sptr, finfo.offset, fty.clone());
                Ok(TPlace {
                    ty: fty,
                    kind: TPlaceKind::Deref(Box::new(addr)),
                })
            }
            other => err(format!("not an lvalue: {other:?}")),
        }
    }

    /// Builds `(u8*)base + off` retyped as `field_ty*`.
    fn add_const_offset(&mut self, base: TExpr, off: u64, to: Type) -> TExpr {
        let ptr_ty = Type::Ptr(Box::new(to));
        if off == 0 {
            return TExpr {
                ty: ptr_ty,
                kind: base.kind,
            };
        }
        TExpr {
            ty: ptr_ty,
            kind: TExprKind::Binary(
                TBinOp::Add,
                Box::new(base),
                Box::new(TExpr {
                    ty: Type::ULONG,
                    kind: TExprKind::Const(off as i128),
                }),
            ),
        }
    }

    /// Address of `base[idx]` as a typed pointer expression.
    fn index_addr(&mut self, base: &Expr, idx: &Expr) -> Res<TExpr> {
        let b = self.check_expr(base)?; // arrays decay to pointers here
        let elem = match b.ty.clone() {
            Type::Ptr(e) => *e,
            other => return err(format!("indexing non-pointer {other}")),
        };
        let esz = elem.size(&self.cx.out.layouts);
        let i = self.check_expr(idx)?;
        let i = self.coerce(i, &Type::ULONG)?;
        let scaled = TExpr {
            ty: Type::ULONG,
            kind: TExprKind::Binary(
                TBinOp::Mul,
                Box::new(i),
                Box::new(TExpr {
                    ty: Type::ULONG,
                    kind: TExprKind::Const(esz as i128),
                }),
            ),
        };
        Ok(TExpr {
            ty: Type::Ptr(Box::new(elem)),
            kind: TExprKind::Binary(TBinOp::Add, Box::new(b), Box::new(scaled)),
        })
    }

    /// Loads a place as an rvalue, decaying arrays to pointers.
    fn load_place(&mut self, p: TPlace) -> TExpr {
        match p.ty.clone() {
            Type::Array(elem, _) => TExpr {
                ty: Type::Ptr(elem),
                kind: TExprKind::AddrOf(Box::new(p)),
            },
            ty => TExpr {
                ty,
                kind: TExprKind::Load(Box::new(p)),
            },
        }
    }

    // -------------------------------------------------------------- exprs

    fn check_expr(&mut self, e: &Expr) -> Res<TExpr> {
        match e {
            Expr::IntLit(v, unsigned, long) => {
                let fits_int = *v <= i32::MAX as u128;
                let ty = match (*unsigned, *long, fits_int) {
                    (false, false, true) => Type::INT,
                    (true, false, true) => Type::Int {
                        width: 32,
                        signed: false,
                    },
                    (_, _, _) => Type::Int {
                        width: 64,
                        signed: !*unsigned,
                    },
                };
                Ok(TExpr {
                    kind: TExprKind::Const(mask_to_type(*v as i128, &ty)),
                    ty,
                })
            }
            Expr::CharLit(c) => Ok(TExpr {
                ty: Type::INT,
                kind: TExprKind::Const(*c as i128),
            }),
            Expr::StrLit(_) => err("string literals are only valid as spec-primitive arguments"),
            Expr::Ident(n) => {
                if let Some(v) = self.cx.out.enum_consts.get(n) {
                    return Ok(TExpr {
                        ty: Type::INT,
                        kind: TExprKind::Const(*v),
                    });
                }
                if self.lookup_local(n).is_some() || self.cx.globals_by_name.contains_key(n) {
                    let p = self.check_place(e)?;
                    return Ok(self.load_place(p));
                }
                err(format!("unknown identifier {n}"))
            }
            Expr::Unary(UnOp::Neg, inner) => {
                let t = self.check_expr(inner)?;
                let t = self.promote(t)?;
                if !t.ty.is_integer() {
                    return err("negation of non-integer");
                }
                Ok(TExpr {
                    ty: t.ty.clone(),
                    kind: TExprKind::Unary(TUnOp::Neg, Box::new(t)),
                })
            }
            Expr::Unary(UnOp::BitNot, inner) => {
                let t = self.check_expr(inner)?;
                let t = self.promote(t)?;
                if !t.ty.is_integer() {
                    return err("~ of non-integer");
                }
                Ok(TExpr {
                    ty: t.ty.clone(),
                    kind: TExprKind::Unary(TUnOp::BitNot, Box::new(t)),
                })
            }
            Expr::Unary(UnOp::LogNot, inner) => {
                let t = self.check_expr(inner)?;
                if !t.ty.is_scalar() {
                    return err("! of non-scalar");
                }
                let zero = TExpr {
                    ty: t.ty.clone(),
                    kind: TExprKind::Const(0),
                };
                Ok(TExpr {
                    ty: Type::INT,
                    kind: TExprKind::Binary(TBinOp::Eq, Box::new(t), Box::new(zero)),
                })
            }
            Expr::Unary(UnOp::Deref, _) | Expr::Index(_, _) | Expr::Member(_, _, _) => {
                let p = self.check_place(e)?;
                Ok(self.load_place(p))
            }
            Expr::Unary(UnOp::AddrOf, inner) => {
                // `&f` (f a function) is consumed directly by `func_arg` for
                // spec primitives; anywhere else it is unsupported.
                if let Expr::Ident(n) = &**inner {
                    if self.lookup_local(n).is_none()
                        && !self.cx.globals_by_name.contains_key(n)
                        && self.cx.func_sigs.contains_key(n)
                    {
                        return err(format!(
                            "function reference &{n} is only valid as a spec-primitive argument"
                        ));
                    }
                }
                let p = self.check_place(inner)?;
                Ok(TExpr {
                    ty: Type::Ptr(Box::new(p.ty.clone())),
                    kind: TExprKind::AddrOf(Box::new(p)),
                })
            }
            Expr::PreIncDec(inner, inc) | Expr::PostIncDec(inner, inc) => {
                let post = matches!(e, Expr::PostIncDec(_, _));
                let p = self.check_place(inner)?;
                let delta: i128 = match &p.ty {
                    Type::Ptr(pointee) => pointee.size(&self.cx.out.layouts) as i128,
                    Type::Int { .. } => 1,
                    other => return err(format!("++/-- on {other}")),
                };
                let delta = if *inc { delta } else { -delta };
                Ok(TExpr {
                    ty: p.ty.decayed(),
                    kind: TExprKind::IncDec {
                        place: Box::new(p),
                        delta,
                        post,
                    },
                })
            }
            Expr::Binary(op, a, b) => self.check_binary(*op, a, b),
            Expr::LogAnd(a, b) => {
                let ta = self.check_cond(a)?;
                let tb = self.check_cond(b)?;
                Ok(TExpr {
                    ty: Type::INT,
                    kind: TExprKind::LogAnd(Box::new(ta), Box::new(tb)),
                })
            }
            Expr::LogOr(a, b) => {
                let ta = self.check_cond(a)?;
                let tb = self.check_cond(b)?;
                Ok(TExpr {
                    ty: Type::INT,
                    kind: TExprKind::LogOr(Box::new(ta), Box::new(tb)),
                })
            }
            Expr::Assign(None, lhs, rhs) => {
                let p = self.check_place(lhs)?;
                let r = self.check_expr(rhs)?;
                let r = self.coerce(r, &p.ty)?;
                Ok(TExpr {
                    ty: p.ty.clone(),
                    kind: TExprKind::Assign(Box::new(p), Box::new(r)),
                })
            }
            Expr::Assign(Some(op), lhs, rhs) => {
                // Desugar `a op= b` into `a = a op b` (place evaluated
                // twice; side-effect-free places are the norm in C specs).
                let combined = Expr::Binary(*op, lhs.clone(), rhs.clone());
                let p = self.check_place(lhs)?;
                let r = self.check_expr(&combined)?;
                let r = self.coerce(r, &p.ty)?;
                Ok(TExpr {
                    ty: p.ty.clone(),
                    kind: TExprKind::Assign(Box::new(p), Box::new(r)),
                })
            }
            Expr::Ternary(c, t, f) => {
                let tc = self.check_cond(c)?;
                let tt = self.check_expr(t)?;
                let tf = self.check_expr(f)?;
                let (tt, tf) = self.usual_conversions(tt, tf)?;
                Ok(TExpr {
                    ty: tt.ty.clone(),
                    kind: TExprKind::Ternary(Box::new(tc), Box::new(tt), Box::new(tf)),
                })
            }
            Expr::Call(name, args) => self.check_call(name, args),
            Expr::Cast(ty, inner) => {
                let to = self.cx.resolve_type(ty)?;
                let t = self.check_expr(inner)?;
                if to == Type::Void {
                    // (void)e — evaluate for effects, value unused.
                    return Ok(t);
                }
                self.coerce_explicit(t, &to)
            }
            Expr::SizeofType(ty) => {
                let t = self.cx.resolve_type(ty)?;
                Ok(TExpr {
                    ty: Type::ULONG,
                    kind: TExprKind::Const(t.size(&self.cx.out.layouts) as i128),
                })
            }
            Expr::SizeofExpr(inner) => {
                // Type-check without emitting: size of the expression type.
                let t = self.check_sizeof_operand(inner)?;
                Ok(TExpr {
                    ty: Type::ULONG,
                    kind: TExprKind::Const(t.size(&self.cx.out.layouts) as i128),
                })
            }
        }
    }

    /// The type of a `sizeof` operand (arrays do NOT decay).
    fn check_sizeof_operand(&mut self, e: &Expr) -> Res<Type> {
        if let Ok(p) = self.check_place(e) {
            return Ok(p.ty);
        }
        Ok(self.check_expr(e)?.ty)
    }

    fn check_binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Res<TExpr> {
        let ta = self.check_expr(a)?;
        let tb = self.check_expr(b)?;
        // Pointer arithmetic.
        if matches!(op, BinOp::Add | BinOp::Sub) {
            match (&ta.ty, &tb.ty) {
                (Type::Ptr(e), t) if t.is_integer() => {
                    return self.pointer_offset(op, ta.clone(), tb, (**e).clone());
                }
                (t, Type::Ptr(e)) if t.is_integer() && op == BinOp::Add => {
                    return self.pointer_offset(op, tb.clone(), ta, (**e).clone());
                }
                (Type::Ptr(e1), Type::Ptr(_)) if op == BinOp::Sub => {
                    let esz = e1.size(&self.cx.out.layouts);
                    let diff = TExpr {
                        ty: Type::Int {
                            width: 64,
                            signed: true,
                        },
                        kind: TExprKind::Binary(TBinOp::Sub, Box::new(ta), Box::new(tb)),
                    };
                    if esz == 1 {
                        return Ok(diff);
                    }
                    return Ok(TExpr {
                        ty: Type::Int {
                            width: 64,
                            signed: true,
                        },
                        kind: TExprKind::Binary(
                            TBinOp::DivS,
                            Box::new(diff),
                            Box::new(TExpr {
                                ty: Type::Int {
                                    width: 64,
                                    signed: true,
                                },
                                kind: TExprKind::Const(esz as i128),
                            }),
                        ),
                    });
                }
                _ => {}
            }
        }
        let (ta, tb) = self.usual_conversions(ta, tb)?;
        let signed = ta.ty.is_signed();
        let top = match op {
            BinOp::Add => TBinOp::Add,
            BinOp::Sub => TBinOp::Sub,
            BinOp::Mul => TBinOp::Mul,
            BinOp::Div => {
                if signed {
                    TBinOp::DivS
                } else {
                    TBinOp::DivU
                }
            }
            BinOp::Rem => {
                if signed {
                    TBinOp::RemS
                } else {
                    TBinOp::RemU
                }
            }
            BinOp::And => TBinOp::And,
            BinOp::Or => TBinOp::Or,
            BinOp::Xor => TBinOp::Xor,
            BinOp::Shl => TBinOp::Shl,
            BinOp::Shr => {
                if signed {
                    TBinOp::ShrA
                } else {
                    TBinOp::ShrL
                }
            }
            BinOp::Eq => TBinOp::Eq,
            BinOp::Ne => TBinOp::Ne,
            BinOp::Lt | BinOp::Gt => {
                if signed {
                    TBinOp::LtS
                } else {
                    TBinOp::LtU
                }
            }
            BinOp::Le | BinOp::Ge => {
                if signed {
                    TBinOp::LeS
                } else {
                    TBinOp::LeU
                }
            }
        };
        let (ta, tb) = if matches!(op, BinOp::Gt | BinOp::Ge) {
            (tb, ta)
        } else {
            (ta, tb)
        };
        let ty = if top.is_cmp() {
            Type::INT
        } else {
            ta.ty.clone()
        };
        Ok(TExpr {
            ty,
            kind: TExprKind::Binary(top, Box::new(ta), Box::new(tb)),
        })
    }

    fn pointer_offset(&mut self, op: BinOp, ptr: TExpr, idx: TExpr, elem: Type) -> Res<TExpr> {
        let esz = elem.size(&self.cx.out.layouts);
        let idx = self.coerce(idx, &Type::ULONG)?;
        let scaled = if esz == 1 {
            idx
        } else {
            TExpr {
                ty: Type::ULONG,
                kind: TExprKind::Binary(
                    TBinOp::Mul,
                    Box::new(idx),
                    Box::new(TExpr {
                        ty: Type::ULONG,
                        kind: TExprKind::Const(esz as i128),
                    }),
                ),
            }
        };
        let top = if op == BinOp::Add {
            TBinOp::Add
        } else {
            TBinOp::Sub
        };
        Ok(TExpr {
            ty: ptr.ty.clone(),
            kind: TExprKind::Binary(top, Box::new(ptr), Box::new(scaled)),
        })
    }

    /// Integer promotion: anything narrower than `int` widens to `int`.
    fn promote(&mut self, e: TExpr) -> Res<TExpr> {
        match &e.ty {
            Type::Int { width, .. } if *width < 32 => self.coerce(e, &Type::INT),
            _ => Ok(e),
        }
    }

    /// Usual arithmetic conversions for a binary operator.
    fn usual_conversions(&mut self, a: TExpr, b: TExpr) -> Res<(TExpr, TExpr)> {
        // Pointers compare as 64-bit unsigned.
        if a.ty.is_pointer() || b.ty.is_pointer() {
            let a = self.coerce(a, &Type::ULONG)?;
            let b = self.coerce(b, &Type::ULONG)?;
            return Ok((a, b));
        }
        let a = self.promote(a)?;
        let b = self.promote(b)?;
        let (wa, wb) = (a.ty.bit_width(), b.ty.bit_width());
        let (sa, sb) = (a.ty.is_signed(), b.ty.is_signed());
        let target = if wa == wb {
            Type::Int {
                width: wa,
                signed: sa && sb,
            }
        } else {
            let w = wa.max(wb);
            let signed = if wa > wb { sa } else { sb };
            Type::Int { width: w, signed }
        };
        let a = self.coerce(a, &target)?;
        let b = self.coerce(b, &target)?;
        Ok((a, b))
    }

    /// Implicit conversion (assignments, arguments, returns).
    fn coerce(&mut self, e: TExpr, to: &Type) -> Res<TExpr> {
        if &e.ty == to {
            return Ok(e);
        }
        if !e.ty.is_scalar() || !to.is_scalar() {
            return err(format!("cannot convert {} to {}", e.ty, to));
        }
        self.coerce_explicit(e, to)
    }

    /// Conversion as by a cast (any scalar to any scalar).
    fn coerce_explicit(&mut self, e: TExpr, to: &Type) -> Res<TExpr> {
        if &e.ty == to {
            return Ok(e);
        }
        if !e.ty.is_scalar() || !to.is_scalar() {
            return err(format!("cannot cast {} to {}", e.ty, to));
        }
        let fw = e.ty.bit_width();
        let tw = to.bit_width();
        let kind = if tw < fw {
            CastKind::Trunc
        } else if tw == fw {
            CastKind::NoOp
        } else if e.ty.is_signed() {
            CastKind::SExt
        } else {
            CastKind::ZExt
        };
        // Constant folding keeps HIR clean.
        if let TExprKind::Const(v) = &e.kind {
            return Ok(TExpr {
                ty: to.clone(),
                kind: TExprKind::Const(mask_to_type(*v, to)),
            });
        }
        Ok(TExpr {
            ty: to.clone(),
            kind: TExprKind::Cast(kind, Box::new(e)),
        })
    }

    // -------------------------------------------------------------- calls

    fn check_call(&mut self, name: &str, args: &[Arg]) -> Res<TExpr> {
        match name {
            "malloc" | "kmalloc" | "kzalloc" => {
                let size = self.expr_arg(args, 0)?;
                let size = self.coerce(size, &Type::ULONG)?;
                let mut targs = vec![TArg::Expr(size)];
                // kmalloc(size, flags): evaluate and drop the flags.
                if args.len() > 1 {
                    let flags = self.expr_arg(args, 1)?;
                    targs.push(TArg::Expr(flags));
                }
                Ok(TExpr {
                    ty: Type::Ptr(Box::new(Type::Void)),
                    kind: TExprKind::Builtin(Builtin::Malloc, targs),
                })
            }
            "free" | "kfree" => {
                let p = self.expr_arg(args, 0)?;
                if !p.ty.is_pointer() && !p.ty.is_integer() {
                    return err("free of non-pointer");
                }
                Ok(TExpr {
                    ty: Type::Void,
                    kind: TExprKind::Builtin(Builtin::Free, vec![TArg::Expr(p)]),
                })
            }
            "assert" | "assume" => {
                // assert/assume applied directly to forall_elem selects the
                // check/assume interpretation of the quantified primitive
                // (paper §4.3: checked by skolemization, assumed by
                // deferred per-element instantiation).
                if let Some(Arg::Expr(Expr::Call(inner, inner_args))) = args.first() {
                    if inner == "forall_elem" {
                        let fe = self.check_call("forall_elem", inner_args)?;
                        if let TExprKind::Builtin(_, targs) = fe.kind {
                            let b = if name == "assert" {
                                Builtin::ForallElemAssert
                            } else {
                                Builtin::ForallElemAssume
                            };
                            return Ok(TExpr {
                                ty: Type::Void,
                                kind: TExprKind::Builtin(b, targs),
                            });
                        }
                        unreachable!("forall_elem checks to a builtin");
                    }
                }
                let c = self.expr_arg(args, 0)?;
                if !c.ty.is_scalar() {
                    return err("assert/assume of non-scalar");
                }
                let b = if name == "assert" {
                    Builtin::Assert
                } else {
                    Builtin::Assume
                };
                Ok(TExpr {
                    ty: Type::Void,
                    kind: TExprKind::Builtin(b, vec![TArg::Expr(c)]),
                })
            }
            "any" => {
                let ty = self.type_arg(args, 0)?;
                let var = match args.get(1) {
                    Some(Arg::Expr(Expr::Ident(n))) => n.clone(),
                    _ => return err("any(type, name): second argument must be an identifier"),
                };
                let slot = self.declare_local(&var, ty.clone())?;
                let place = TPlace {
                    ty: ty.clone(),
                    kind: TPlaceKind::Local(slot),
                };
                let addr = TExpr {
                    ty: Type::Ptr(Box::new(ty.clone())),
                    kind: TExprKind::AddrOf(Box::new(place)),
                };
                Ok(TExpr {
                    ty: Type::Void,
                    kind: TExprKind::Builtin(
                        Builtin::Any,
                        vec![TArg::Type(ty), TArg::Expr(addr), TArg::Str(var)],
                    ),
                })
            }
            "points_to" | "names_obj" => {
                let p = self.expr_arg(args, 0)?;
                let ty = self.type_arg(args, 1)?;
                let obj_name = if name == "points_to" {
                    match args.get(2) {
                        Some(Arg::Expr(Expr::StrLit(s))) => s.clone(),
                        _ => return err("points_to: third argument must be a string literal"),
                    }
                } else {
                    // names_obj stringifies its first argument (paper ⑤).
                    stringify_expr(match &args[0] {
                        Arg::Expr(e) => e,
                        Arg::Type(_) => return err("names_obj: bad argument"),
                    })
                };
                let p = self.coerce(p, &Type::ULONG)?;
                Ok(TExpr {
                    ty: Type::BOOL,
                    kind: TExprKind::Builtin(
                        Builtin::PointsTo,
                        vec![TArg::Expr(p), TArg::Type(ty), TArg::Str(obj_name)],
                    ),
                })
            }
            "names_obj_forall" => {
                let f = self.func_arg(args, 0)?;
                let ty = self.type_arg(args, 1)?;
                let fname = f.clone();
                Ok(TExpr {
                    ty: Type::BOOL,
                    kind: TExprKind::Builtin(
                        Builtin::NamesObjForall,
                        vec![TArg::FuncRef(f), TArg::Type(ty), TArg::Str(fname)],
                    ),
                })
            }
            "names_obj_forall_cond" => {
                let f = self.func_arg(args, 0)?;
                let ty = self.type_arg(args, 1)?;
                let cond = self.func_arg(args, 2)?;
                let fname = f.clone();
                Ok(TExpr {
                    ty: Type::BOOL,
                    kind: TExprKind::Builtin(
                        Builtin::NamesObjForallCond,
                        vec![
                            TArg::FuncRef(f),
                            TArg::Type(ty),
                            TArg::FuncRef(cond),
                            TArg::Str(fname),
                        ],
                    ),
                })
            }
            "forall_elem" => {
                let arr = self.expr_arg(args, 0)?;
                let elem_ty = match arr.ty.clone() {
                    Type::Ptr(e) => *e,
                    other => return err(format!("forall_elem over non-pointer {other}")),
                };
                let f = self.func_arg(args, 1)?;
                let mut targs = vec![
                    TArg::Expr(self.coerce(arr, &Type::ULONG)?),
                    TArg::FuncRef(f),
                    TArg::Type(elem_ty),
                ];
                for a in &args[2..] {
                    match a {
                        Arg::Expr(e) => targs.push(TArg::Expr(self.check_expr(e)?)),
                        Arg::Type(_) => return err("forall_elem: unexpected type argument"),
                    }
                }
                Ok(TExpr {
                    ty: Type::BOOL,
                    kind: TExprKind::Builtin(Builtin::ForallElem, targs),
                })
            }
            "__tpot_inv" => {
                let f = self.func_arg(args, 0)?;
                let sig = self
                    .cx
                    .func_sigs
                    .get(&f)
                    .cloned()
                    .ok_or_else(|| SemaError(format!("unknown invariant function {f}")))?;
                let n_inv_args = sig.1.len();
                let mut targs = vec![TArg::FuncRef(f)];
                let rest = &args[1..];
                if rest.len() < n_inv_args || !(rest.len() - n_inv_args).is_multiple_of(2) {
                    return err(
                        "__tpot_inv: expected invariant args followed by (ptr, size) pairs",
                    );
                }
                for (i, a) in rest.iter().enumerate() {
                    let e = match a {
                        Arg::Expr(e) => self.check_expr(e)?,
                        Arg::Type(_) => return err("__tpot_inv: unexpected type argument"),
                    };
                    let e = if i < n_inv_args {
                        self.coerce(e, &sig.1[i].1)?
                    } else {
                        self.coerce(e, &Type::ULONG)?
                    };
                    targs.push(TArg::Expr(e));
                }
                Ok(TExpr {
                    ty: Type::Void,
                    kind: TExprKind::Builtin(Builtin::TpotInv, targs),
                })
            }
            _ => {
                let sig = self
                    .cx
                    .func_sigs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| SemaError(format!("call to undeclared function {name}")))?;
                if args.len() != sig.1.len() {
                    return err(format!(
                        "call to {name}: expected {} arguments, got {}",
                        sig.1.len(),
                        args.len()
                    ));
                }
                let mut targs = Vec::with_capacity(args.len());
                for (a, (_, pty)) in args.iter().zip(&sig.1) {
                    match a {
                        Arg::Expr(e) => {
                            let te = self.check_expr(e)?;
                            targs.push(self.coerce(te, pty)?);
                        }
                        Arg::Type(_) => return err("unexpected type argument"),
                    }
                }
                Ok(TExpr {
                    ty: sig.0,
                    kind: TExprKind::Call(name.to_string(), targs),
                })
            }
        }
    }

    fn expr_arg(&mut self, args: &[Arg], i: usize) -> Res<TExpr> {
        match args.get(i) {
            Some(Arg::Expr(e)) => self.check_expr(e),
            _ => err(format!("missing expression argument {i}")),
        }
    }

    fn type_arg(&mut self, args: &[Arg], i: usize) -> Res<Type> {
        match args.get(i) {
            Some(Arg::Type(t)) => self.cx.resolve_type(t),
            _ => err(format!("missing type argument {i}")),
        }
    }

    /// A function reference argument: `&f` or a bare function name.
    fn func_arg(&mut self, args: &[Arg], i: usize) -> Res<String> {
        let name = match args.get(i) {
            Some(Arg::Expr(Expr::Unary(UnOp::AddrOf, inner))) => match &**inner {
                Expr::Ident(n) => n.clone(),
                _ => return err("expected a function reference"),
            },
            Some(Arg::Expr(Expr::Ident(n))) => n.clone(),
            _ => return err("expected a function reference"),
        };
        if !self.cx.func_sigs.contains_key(&name) {
            return err(format!("unknown function {name}"));
        }
        Ok(name)
    }
}

/// Source-level stringification used by `names_obj` (paper primitive ⑤).
fn stringify_expr(e: &Expr) -> String {
    match e {
        Expr::Ident(n) => n.clone(),
        Expr::Cast(_, inner) => stringify_expr(inner),
        Expr::Unary(UnOp::AddrOf, inner) => format!("&{}", stringify_expr(inner)),
        Expr::Unary(UnOp::Deref, inner) => format!("*{}", stringify_expr(inner)),
        Expr::Member(b, f, arrow) => format!(
            "{}{}{}",
            stringify_expr(b),
            if *arrow { "->" } else { "." },
            f
        ),
        Expr::Index(b, i) => format!("{}[{}]", stringify_expr(b), stringify_expr(i)),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;

    #[test]
    fn check_simple_component() {
        let p = compile(
            "int a, b;\nvoid increment(int *p) { *p = *p + 1; }\nvoid transfer(void) { increment(&a); }\n",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 2);
        assert!(p.func("increment").is_some());
        assert!(p.func("transfer").is_some());
    }

    #[test]
    fn pot_and_invariant_discovery() {
        let p = compile(
            "int a;\nint inv__ok(void) { return a == 0; }\nvoid spec__t(void) { assert(a == 0); }\nvoid helper(void) {}\n",
        )
        .unwrap();
        assert_eq!(p.pot_names(), vec!["spec__t"]);
        assert_eq!(p.invariant_names(), vec!["inv__ok"]);
    }

    #[test]
    fn pointer_arith_scaled() {
        let p = compile("long *q;\nlong f(void) { return *(q + 2); }\n").unwrap();
        // The HIR must contain a multiplication by 8.
        let f = p.func("f").unwrap();
        let s = format!("{:?}", f.body);
        assert!(s.contains("Const(8)"), "{s}");
    }

    #[test]
    fn member_access_offsets() {
        let p = compile(
            "struct pair { int x; int y; };\nstruct pair g;\nint f(void) { return g.y; }\n",
        )
        .unwrap();
        let f = p.func("f").unwrap();
        let s = format!("{:?}", f.body);
        assert!(s.contains("Const(4)"), "field y at offset 4: {s}");
    }

    #[test]
    fn arrow_on_pointer() {
        let p = compile(
            "struct perm { int owner; };\nstruct perm *pp;\nint f(void) { return pp->owner; }\n",
        )
        .unwrap();
        assert!(p.func("f").is_some());
    }

    #[test]
    fn array_decay_and_index() {
        let p = compile("int arr[8];\nint f(int i) { return arr[i]; }\n").unwrap();
        let f = p.func("f").unwrap();
        let s = format!("{:?}", f.body);
        assert!(s.contains("Mul"), "index scaling: {s}");
    }

    #[test]
    fn any_declares_symbolic_local() {
        let p = compile("void spec__x(void) { any(unsigned long, v); assume(v > 0); }\n").unwrap();
        let f = p.func("spec__x").unwrap();
        assert!(f.locals.iter().any(|l| l.name == "v"));
    }

    #[test]
    fn names_obj_stringifies() {
        let p =
            compile("char *p1;\nint inv__a(void) { return names_obj(p1, char[16]); }\n").unwrap();
        let f = p.func("inv__a").unwrap();
        let s = format!("{:?}", f.body);
        assert!(s.contains("\"p1\""), "{s}");
    }

    #[test]
    fn unsigned_division_resolved() {
        let p = compile("unsigned long a, b;\nunsigned long f(void) { return a / b; }\n").unwrap();
        let s = format!("{:?}", p.func("f").unwrap().body);
        assert!(s.contains("DivU"), "{s}");
        let p2 = compile("long a, b;\nlong f(void) { return a / b; }\n").unwrap();
        let s2 = format!("{:?}", p2.func("f").unwrap().body);
        assert!(s2.contains("DivS"), "{s2}");
    }

    #[test]
    fn global_initializers() {
        let p = compile("unsigned long x = 0x10;\nint arr[4] = {1, 2};\n").unwrap();
        assert_eq!(p.globals[0].init, vec![(0, 64, 0x10)]);
        assert_eq!(p.globals[1].init, vec![(0, 32, 1), (4, 32, 2)]);
    }

    #[test]
    fn enum_constants_fold() {
        let p = compile("enum { A, B = 7, C };\nint f(void) { return C; }\n").unwrap();
        let s = format!("{:?}", p.func("f").unwrap().body);
        assert!(s.contains("Const(8)"), "{s}");
    }

    #[test]
    fn int_to_pointer_cast() {
        let p = compile("unsigned long cur;\nvoid f(void) { char *p = (char *)cur; *p = 0; }\n")
            .unwrap();
        assert!(p.func("f").is_some());
    }

    #[test]
    fn sizeof_forms() {
        let p = compile(
            "struct s { long a; char b; };\nunsigned long f(void) { struct s v; return sizeof(struct s) + sizeof v; }\n",
        )
        .unwrap();
        let s = format!("{:?}", p.func("f").unwrap().body);
        assert!(s.contains("Const(16)"), "{s}");
    }

    #[test]
    fn error_unknown_identifier() {
        assert!(compile("int f(void) { return nope; }\n").is_err());
    }

    #[test]
    fn error_call_arity() {
        assert!(compile("void g(int x) {}\nvoid f(void) { g(); }\n").is_err());
    }

    #[test]
    fn tpot_inv_args_and_pairs() {
        let p = compile(
            "int loopinv(int *i) { return *i >= 0; }\nvoid f(void) { int i = 0; while (i < 4) { __tpot_inv(&loopinv, &i, &i, sizeof(i)); i++; } }\n",
        )
        .unwrap();
        assert!(p.func("f").is_some());
    }

    #[test]
    fn extern_merges_with_definition() {
        let p = compile("extern unsigned num;\nunsigned num = 3;\n").unwrap();
        assert_eq!(p.globals.len(), 1);
        assert!(!p.globals[0].is_extern);
        assert_eq!(p.globals[0].init, vec![(0, 32, 3)]);
    }

    #[test]
    fn compound_assign_desugars() {
        let p = compile("unsigned long cur;\nvoid f(void) { cur += 4096; }\n").unwrap();
        let s = format!("{:?}", p.func("f").unwrap().body);
        assert!(s.contains("Assign"), "{s}");
        assert!(s.contains("Add"), "{s}");
    }

    #[test]
    fn ternary_types_unify() {
        let p = compile("int f(int c) { return c ? 1u : 2u; }\n").unwrap();
        assert!(p.func("f").is_some());
    }

    #[test]
    fn postinc_pointer_scales() {
        let p = compile("long *p;\nvoid f(void) { p++; }\n").unwrap();
        let s = format!("{:?}", p.func("f").unwrap().body);
        assert!(s.contains("delta: 8"), "{s}");
    }
}
