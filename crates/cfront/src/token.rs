//! Token definitions shared by the lexer and parser.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal (value, explicitly-unsigned?, explicitly-long?).
    Int(u128, bool, bool),
    /// Character literal, already decoded to its value.
    Char(u8),
    /// String literal, already unescaped.
    Str(String),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Punctuation and operator tokens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,
    Ellipsis,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v, _, _) => write!(f, "{v}"),
            Tok::Char(c) => write!(f, "'{}'", *c as char),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Punct(p) => write!(f, "{p:?}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Clone, Debug)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}
