//! C-subset frontend for TPot.
//!
//! TPot verifies components written in *standard, unrestricted C* (paper §1):
//! the implementation language is C, and the specification language is C
//! extended with eight verification primitives (Table 2). This crate
//! implements the frontend for the C subset exercised by the paper's six
//! evaluation targets — untyped pointers, pointer arithmetic,
//! integer↔pointer casts, bit-twiddling, structs/arrays, dynamic allocation
//! — plus the specification primitives:
//!
//! | # | primitive |
//! |---|-----------|
//! | ① | `any(type, name)` |
//! | ② | `assume(cond)` |
//! | ③ | `assert(cond)` |
//! | ④ | `points_to(ptr, type, name)` |
//! | ⑤ | `names_obj(ptr, type)` |
//! | ⑥ | `names_obj_forall(ptr_f, type)` |
//! | ⑦ | `forall_elem(arr, cond, ...)` |
//! | ⑧ | `names_obj_forall_cond(ptr_f, type, cond)` |
//!
//! Functions named `spec__*` are proof-oriented tests (POTs), `inv__*` are
//! global invariants, and `__tpot_inv(&f, args…, (ptr, size)…)` at a loop
//! head declares a loop invariant (paper §4.1, appendix A).
//!
//! Pipeline: [`pp`] (comment stripping + `#define`) → [`lexer`] →
//! [`parser`] (AST in [`ast`]) → [`sema`] (type checking and implicit
//! conversion materialization over [`types`]).

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pp;
pub mod sema;
pub mod token;
pub mod types;

pub use ast::Program;
pub use sema::{analyze, CheckedProgram, SemaError};
pub use types::{StructLayouts, Type};

/// Convenience: preprocess, lex, parse and type-check a translation unit.
pub fn compile(source: &str) -> Result<CheckedProgram, FrontError> {
    let _span = tpot_obs::span_args("cfront", "compile", &[("bytes", source.len().to_string())]);
    let pre = pp::preprocess(source).map_err(FrontError::Pp)?;
    let tokens = lexer::lex(&pre).map_err(FrontError::Lex)?;
    let program = parser::parse(tokens).map_err(FrontError::Parse)?;
    sema::analyze(program).map_err(FrontError::Sema)
}

/// Any frontend error, with a human-readable message.
#[derive(Debug, Clone)]
pub enum FrontError {
    /// Preprocessor error.
    Pp(String),
    /// Lexer error.
    Lex(String),
    /// Parser error.
    Parse(String),
    /// Type/semantic error.
    Sema(SemaError),
}

impl std::fmt::Display for FrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontError::Pp(m) => write!(f, "preprocessor: {m}"),
            FrontError::Lex(m) => write!(f, "lexer: {m}"),
            FrontError::Parse(m) => write!(f, "parser: {m}"),
            FrontError::Sema(m) => write!(f, "sema: {m}"),
        }
    }
}

impl std::error::Error for FrontError {}

impl From<FrontError> for tpot_api::TpotError {
    fn from(e: FrontError) -> Self {
        match &e {
            FrontError::Pp(_) | FrontError::Lex(_) | FrontError::Parse(_) => {
                tpot_api::TpotError::parse(e.to_string())
            }
            FrontError::Sema(_) => tpot_api::TpotError::sema(e.to_string()),
        }
    }
}
