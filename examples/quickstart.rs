//! Quickstart: verify the paper's Figure 1 toy system end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The component keeps two integers whose sum is zero. The TPot
//! specification consists of two proof-oriented tests (POTs) and one global
//! invariant; TPot proves every assertion, re-establishes the invariant
//! after each POT, and — if you break the code — hands back a
//! counterexample.

use tpot::engine::{PotStatus, Verifier};

const SYSTEM: &str = r#"
/* -- System implementation (paper Fig. 1a) -------------------------- */
int a, b;
void increment(int *p) { *p = *p + 1; }
void decrement(int *p) { *p = *p - 1; }
void init(void) { a = 0; b = 0; }
void transfer(void) {
  increment(&a);
  decrement(&b);
}
int get_sum(void) { return a + b; }

/* -- TPot specification (paper Fig. 1b) ------------------------------ */
int inv__sum_zero(void) { return a + b == 0; }

void spec__transfer(void) {
  int old_a = a, old_b = b;
  transfer();
  assert(a == old_a + 1);
  assert(b == old_b - 1);
}
void spec__get_sum(void) {
  int res = get_sum();
  assert(res == 0);
}
"#;

fn main() {
    // Compile the C, lower it to TIR, and build a verifier.
    let checked = tpot::cfront::compile(SYSTEM).expect("frontend");
    let module = tpot::ir::lower(&checked).expect("lowering");
    let verifier = Verifier::new(module);

    // Verify every POT. Note there is no specification for increment() or
    // decrement(): TPot inlines internal functions (paper §4.1).
    for result in verifier.verify(&tpot::engine::VerifyOptions::new().jobs(1)) {
        match &result.status {
            PotStatus::Proved => {
                println!(
                    "✓ {} proved in {:?} ({} solver queries, {} paths)",
                    result.pot, result.duration, result.stats.num_queries, result.stats.paths
                );
            }
            PotStatus::Failed(violations) => {
                println!("✗ {} FAILED:", result.pot);
                for v in violations {
                    println!("{v}");
                }
            }
            PotStatus::Error(e) => println!("! {}: engine error: {e}", result.pot),
        }
    }

    // Now seed the §3.2 bug: drop the invariant and watch spec__get_sum
    // fail with a concrete counterexample such as (a: 1, b: -1 missing).
    let buggy = SYSTEM.replace("int inv__sum_zero(void) { return a + b == 0; }", "");
    let module = tpot::ir::lower(&tpot::cfront::compile(&buggy).unwrap()).unwrap();
    let r = Verifier::new(module).verify_pot("spec__get_sum");
    println!("\nWithout inv__sum_zero (paper §3.2):");
    match r.status {
        PotStatus::Failed(vs) => println!("{}", vs[0]),
        other => println!("unexpected: {other:?}"),
    }
}
