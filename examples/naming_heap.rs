//! The naming abstraction on dynamically allocated memory (paper Fig. 5 and
//! §4.1 "Naming").
//!
//! ```sh
//! cargo run --release --example naming_heap
//! ```
//!
//! Demonstrates:
//! - `names_obj(p1, int) && names_obj(p2, int)` implies p1 and p2 do not
//!   alias — no arithmetic non-aliasing spelled out;
//! - TPot's renaming proof: `init()` establishes the invariant even though
//!   `malloc` returns blocks with no names (the mapping is existential);
//! - the leak check: an object the invariants fail to name is reported.

use tpot::engine::{PotStatus, Verifier, ViolationKind};

const SYSTEM: &str = r#"
int *p1, *p2;
void init(void) {
  p1 = malloc(sizeof(int));
  p2 = malloc(sizeof(int));
}
void incr_p1(void) { *p1 = *p1 + 1; }

int inv__alloc(void) {
  return names_obj(p1, int) && names_obj(p2, int);
}

void spec__incr_p1(void) {
  int old_p1 = *p1;
  int old_p2 = *p2;
  incr_p1();
  assert(*p1 == old_p1 + 1);
  assert(*p2 == old_p2); /* needs non-aliasing! */
}

void spec__init(void) { init(); }
"#;

fn main() {
    let module = tpot::ir::lower(&tpot::cfront::compile(SYSTEM).unwrap()).unwrap();
    let v = Verifier::new(module);

    for pot in ["spec__incr_p1", "spec__init"] {
        let r = v.verify_pot(pot);
        println!(
            "{} {pot}: {:?} in {:?}",
            if r.status.is_proved() { "✓" } else { "✗" },
            match &r.status {
                PotStatus::Proved =>
                    "proved (naming ⇒ non-aliasing, renaming ⇒ init ok)".to_string(),
                other => format!("{other:?}"),
            },
            r.duration
        );
    }

    // Leak demo: name only p1 — the second malloc'd block can be renamed to
    // the empty name, which identifies a leak (theorem clause (C), §4.1).
    let leaky = SYSTEM.replace(
        "return names_obj(p1, int) && names_obj(p2, int);",
        "return names_obj(p1, int);",
    );
    let module = tpot::ir::lower(&tpot::cfront::compile(&leaky).unwrap()).unwrap();
    let r = Verifier::new(module).verify_pot("spec__init");
    match r.status {
        PotStatus::Failed(vs) => {
            assert!(vs.iter().any(|v| v.kind == ViolationKind::MemoryLeak));
            println!("\nWith p2 unnamed, TPot reports:\n{}", vs[0]);
        }
        other => println!("unexpected: {other:?}"),
    }
}
