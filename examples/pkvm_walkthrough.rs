//! The paper's appendix A walkthrough: verifying `spec__alloc_page` of the
//! pKVM early allocator, including the `clear_page` loop invariant and the
//! quantifier-free `forall_elem` proof.
//!
//! ```sh
//! cargo run --release --example pkvm_walkthrough
//! ```

use tpot::engine::PotStatus;
use tpot::targets::target;

fn main() {
    let t = target("pkvm").expect("bundled target");
    println!(
        "Target: {} ({}, previously verified with {})",
        t.name, t.category, t.previously_verified_with
    );
    let v = t.verifier().expect("compiles");

    // The appendix proves spec__alloc_page: assuming one page is left,
    // hyp_early_alloc_page returns a non-null, zero-initialized page and
    // bumps `cur` — with the page-zeroing loop handled by
    // loopinv__clear_page (check on entry, havoc, assume, cut at the back
    // edge) and the final forall_elem discharged by skolemization plus
    // per-byte marker instantiation (§4.3).
    for pot in ["spec__init", "spec__nr_pages", "spec__alloc_page"] {
        let r = v.verify_pot(pot);
        match &r.status {
            PotStatus::Proved => println!(
                "✓ {pot}: proved in {:?} ({} queries, {} paths, {} marker instantiations)",
                r.duration,
                r.stats.num_queries,
                r.stats.paths,
                r.stats.raw_simplifications + r.stats.const_offset_hits,
            ),
            PotStatus::Failed(vs) => println!("✗ {pot}: {}", vs[0]),
            PotStatus::Error(e) => println!("! {pot}: {e}"),
        }
    }
    println!("\nFig. 7-style time breakdown for this target:");
    let mut agg = tpot::engine::Stats::default();
    for pot in ["spec__nr_pages", "spec__alloc_page"] {
        agg.merge(&v.verify_pot(pot).stats);
    }
    let (simp, ptr, br, ser, other) = agg.fig7_breakdown();
    println!(
        "  query-simplification {simp:.1}%  SMT:pointers {ptr:.1}%  SMT:branches {br:.1}%  serialization {ser:.1}%  other {other:.1}%"
    );
}
