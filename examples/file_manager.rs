//! The paper's Figure 4 file-manager component: quantified naming over an
//! array of permission structs (`names_obj_forall_cond`) and `forall_elem`
//! preconditions.
//!
//! ```sh
//! cargo run --release --example file_manager
//! ```
//!
//! Note: this is the heaviest example — the quantified-naming pledge is
//! re-verified against every heap object at the end of the POT (several
//! minutes on a small machine).

use tpot::engine::{PotStatus, Verifier};

const SYSTEM: &str = r#"
#define MAX_FILES 4
#define PID_INVALID 0

typedef unsigned long inode_t;
typedef unsigned long pid_t;

struct file_perm { pid_t owner; };
struct file {
  inode_t inode;
  struct file_perm *permissions;
};

struct file *files;
unsigned int num_files;

/* -- Implementation -------------------------------------------------- */
int create_file(inode_t node, pid_t pid) {
  if (pid == PID_INVALID)
    return -1;
  if (num_files >= MAX_FILES)
    return -1;
  int idx = (int)num_files;
  files[idx].inode = node;
  files[idx].permissions = (struct file_perm *)malloc(sizeof(struct file_perm));
  files[idx].permissions->owner = pid;
  num_files = num_files + 1;
  return idx;
}

/* -- Specification (paper Fig. 4) ------------------------------------ */
struct file_perm *perm_ptr_i(int i) {
  if (i < 0 || i >= (int)num_files)
    return (struct file_perm *)0;
  return files[i].permissions;
}
int owner_valid(struct file_perm *p) {
  return p->owner != PID_INVALID;
}

int inv__owners(void) {
  return names_obj(files, struct file[MAX_FILES])
      && num_files <= MAX_FILES
      && names_obj_forall_cond(perm_ptr_i, struct file_perm, owner_valid);
}

void spec__create_file(void) {
  any(inode_t, node);
  any(pid_t, pid);
  assume(pid != PID_INVALID);
  int idx = create_file(node, pid);
  if (idx > 0) {
    assert(files[idx].inode == node);
    assert(files[idx].permissions->owner == pid);
  }
}
"#;

fn main() {
    let module = tpot::ir::lower(&tpot::cfront::compile(SYSTEM).unwrap()).unwrap();
    let v = Verifier::new(module);
    let r = v.verify_pot("spec__create_file");
    match &r.status {
        PotStatus::Proved => println!(
            "✓ spec__create_file proved in {:?} ({} queries, {} lazy materializations)",
            r.duration, r.stats.num_queries, r.stats.materializations
        ),
        PotStatus::Failed(vs) => println!("✗ spec__create_file: {}", vs[0]),
        PotStatus::Error(e) => println!("! engine error: {e}"),
    }
}
