/*
 * Models of the Linux USB core and input subsystem (paper §5.1): "The
 * VeriFast specification does not consider the actual implementation of
 * these Linux functions but relies on trusted VeriFast contracts instead.
 * We take a similar approach: we model their behavior using simple C
 * functions." These lines are the "Linux models" annotation category of
 * Table 4.
 */

#define NULL 0
#define EIO 5
#define ENOMEM 12

/* A USB request block (URB): the unit of USB I/O. */
struct urb {
  int submitted;
  unsigned long transfer_buffer; /* driver's data buffer (address) */
  int transfer_length;
  unsigned long context;         /* driver private pointer (address) */
};

/* A connected USB device, as handed to probe(). */
struct usb_device {
  int devnum;
  int speed;
};

/* An input-subsystem device. */
struct input_dev {
  int registered;
  int open_count;
  unsigned long private_data;
};

struct urb *usb_alloc_urb(void) {
  struct urb *u = (struct urb *)malloc(sizeof(struct urb));
  u->submitted = 0;
  u->transfer_buffer = 0;
  u->transfer_length = 0;
  u->context = 0;
  return u;
}

void usb_free_urb(struct urb *u) {
  free(u);
}

int usb_submit_urb(struct urb *u) {
  /* Precondition (checked, not assumed): the URB must be filled in. */
  assert(u->transfer_buffer != 0);
  u->submitted = 1;
  return 0;
}

void usb_kill_urb(struct urb *u) {
  u->submitted = 0;
}

char *usb_alloc_coherent(unsigned long size) {
  return (char *)malloc(size);
}

void usb_free_coherent(char *p) {
  free(p);
}

struct input_dev *input_allocate_device(void) {
  struct input_dev *d = (struct input_dev *)malloc(sizeof(struct input_dev));
  d->registered = 0;
  d->open_count = 0;
  d->private_data = 0;
  return d;
}

void input_free_device(struct input_dev *d) {
  free(d);
}

int input_register_device(struct input_dev *d) {
  d->registered = 1;
  return 0;
}

void input_unregister_device(struct input_dev *d) {
  d->registered = 0;
}
