/*
 * TPot specification for the USB mouse driver (paper §5.1): opening/closing
 * submits/cancels URBs; probing initializes the device and allocates the
 * data structures; disconnection frees them all; and the driver meets the
 * (modeled) Linux API preconditions.
 */

/* Global invariant: either no device is bound, or the full object graph is
 * allocated and wired (the naming also gives non-aliasing, §4.1). */
int inv__mouse(void) {
  return mouse == NULL
      || (names_obj(mouse, struct usb_mouse)
          && names_obj(mouse->irq, struct urb)
          && names_obj(mouse->dev, struct input_dev)
          && names_obj(mouse->data, char[MOUSE_DATA_LEN])
          && mouse->irq->transfer_buffer == (unsigned long)mouse->data
          && mouse->open_count >= 0);
}

void spec__open(void) {
  assume(mouse != NULL);
  int old_count = mouse->open_count;
  assume(old_count < 1000000);

  int r = usb_mouse_open();

  assert(r == 0);
  assert(mouse->open_count == old_count + 1);
  /* First opener must have submitted the interrupt URB. */
  if (old_count == 0)
    assert(mouse->irq->submitted == 1);
}

void spec__close(void) {
  assume(mouse != NULL);
  int old_count = mouse->open_count;
  assume(old_count > 0);

  usb_mouse_close();

  assert(mouse->open_count == old_count - 1);
  /* Last closer cancels the URB. */
  if (old_count == 1)
    assert(mouse->irq->submitted == 0);
}

/* probe() is the component initializer: it must establish inv__mouse and
 * allocate the object graph. */
void spec__probe_init(void) {
  any(struct usb_device *, udev);
  assume(names_obj(udev, struct usb_device));
  assume(mouse == NULL);

  int r = usb_mouse_probe(udev);

  assert(r == 0);
  assert(mouse != NULL);
  assert(mouse->usbdev == udev);
  assert(mouse->open_count == 0);
  assert(mouse->dev->registered == 1);
  assert(mouse->irq->transfer_length == MOUSE_DATA_LEN);
}

void spec__disconnect(void) {
  assume(mouse != NULL);

  usb_mouse_disconnect();

  /* All structures freed (leak-checked by TPot), device unbound. */
  assert(mouse == NULL);
}

void spec__irq_decode(void) {
  assume(mouse != NULL);
  assume(mouse->irq->context == (unsigned long)mouse);

  int buttons = usb_mouse_irq(mouse->irq);

  assert(buttons >= 0 && buttons <= 7);
}
