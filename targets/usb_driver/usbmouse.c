/*
 * Port of the Linux USB mouse driver (drivers/hid/usbhid/usbmouse.c), the
 * VeriFast case study of paper §5.1. The driver probes a device
 * (allocating its control structures and the coherent transfer buffer),
 * opens/closes the device file (submitting/cancelling the interrupt URB),
 * and disconnects (freeing everything). Type-casting buffer pointers into
 * driver-specific control structures and the malloc/free discipline are
 * the verified behaviors.
 *
 * Single-instance component model: the device state hangs off one global,
 * as the component-level verification slices it.
 */

#define MOUSE_DATA_LEN 8

struct usb_mouse {
  struct usb_device *usbdev;
  struct input_dev *dev;
  struct urb *irq;
  char *data;
  int open_count;
};

struct usb_mouse *mouse;

/* open(): submit the interrupt URB so reports start flowing. */
int usb_mouse_open(void) {
  struct usb_mouse *m = mouse;
  int status;

  m->open_count = m->open_count + 1;
  if (m->open_count == 1) {
    status = usb_submit_urb(m->irq);
    if (status != 0) {
      m->open_count = m->open_count - 1;
      return -EIO;
    }
  }
  return 0;
}

/* close(): cancel the URB once the last opener leaves. */
void usb_mouse_close(void) {
  struct usb_mouse *m = mouse;

  m->open_count = m->open_count - 1;
  if (m->open_count == 0)
    usb_kill_urb(m->irq);
}

/* probe(): allocate and wire up the per-device state. */
int usb_mouse_probe(struct usb_device *udev) {
  struct usb_mouse *m;
  struct input_dev *input_dev;
  struct urb *irq;
  char *data;
  int err;

  m = (struct usb_mouse *)malloc(sizeof(struct usb_mouse));
  data = usb_alloc_coherent(MOUSE_DATA_LEN);
  irq = usb_alloc_urb();
  input_dev = input_allocate_device();

  m->usbdev = udev;
  m->dev = input_dev;
  m->irq = irq;
  m->data = data;
  m->open_count = 0;

  irq->transfer_buffer = (unsigned long)data;
  irq->transfer_length = MOUSE_DATA_LEN;
  irq->context = (unsigned long)m;

  err = input_register_device(input_dev);
  if (err != 0) {
    input_free_device(input_dev);
    usb_free_urb(irq);
    usb_free_coherent(data);
    free(m);
    return -ENOMEM;
  }

  mouse = m;
  return 0;
}

/* disconnect(): quiesce and free everything probe allocated. */
void usb_mouse_disconnect(void) {
  struct usb_mouse *m = mouse;

  usb_kill_urb(m->irq);
  input_unregister_device(m->dev);
  input_free_device(m->dev);
  usb_free_urb(m->irq);
  usb_free_coherent(m->data);
  free(m);
  mouse = NULL;
}

/* The interrupt handler: decode a report from the transfer buffer. The
 * cast from the raw buffer into driver structures is the idiom VeriFast
 * needed lemmas for. */
int usb_mouse_irq(struct urb *u) {
  struct usb_mouse *m = (struct usb_mouse *)(u->context);
  char *d = m->data;
  int buttons = d[0];
  return buttons & 0x7;
}
