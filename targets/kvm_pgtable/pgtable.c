/*
 * Port of the KVM page-table case study (paper §5.1), originally verified
 * with RefinedC. A simplified Linux KVM stage-2 page table: each 64-bit
 * entry packs a page-aligned physical address with protection bits and a
 * validity flag; the operations are pure bit-twiddling over the packed
 * representation (the verification-hostile idiom the paper highlights —
 * TPot "reasons directly on bitvectors, whereas RefinedC abstracts them
 * into field-based structures").
 */

#define PT_ENTRIES 8

#define KVM_PTE_VALID 0x1
#define KVM_PTE_PROT_SHIFT 2
#define KVM_PTE_PROT_MASK 0xfc
#define KVM_PTE_ADDR_MASK 0xfffffffff000

#define KVM_PROT_R 0x1
#define KVM_PROT_W 0x2
#define KVM_PROT_X 0x4

unsigned long pgtable[PT_ENTRIES];

/* Pack a physical address and protection bits into a valid PTE. */
unsigned long kvm_pte_mk(unsigned long pa, unsigned long prot) {
  return (pa & KVM_PTE_ADDR_MASK)
       | ((prot << KVM_PTE_PROT_SHIFT) & KVM_PTE_PROT_MASK)
       | KVM_PTE_VALID;
}

int kvm_pte_valid(unsigned long pte) {
  return (pte & KVM_PTE_VALID) != 0;
}

unsigned long kvm_pte_addr(unsigned long pte) {
  return pte & KVM_PTE_ADDR_MASK;
}

unsigned long kvm_pte_prot(unsigned long pte) {
  return (pte & KVM_PTE_PROT_MASK) >> KVM_PTE_PROT_SHIFT;
}

/* Install a mapping. */
void kvm_set_pte(int idx, unsigned long pa, unsigned long prot) {
  pgtable[idx] = kvm_pte_mk(pa, prot);
}

/* Invalidate an entry, preserving the address and protection bits (the
 * Linux pattern for break-before-make). */
void kvm_set_invalid_pte(int idx) {
  pgtable[idx] = pgtable[idx] & ~KVM_PTE_VALID;
}

/* Update only the protection bits of an entry. */
void kvm_set_prot(int idx, unsigned long prot) {
  unsigned long pte = pgtable[idx];
  pte = pte & ~KVM_PTE_PROT_MASK;
  pte = pte | ((prot << KVM_PTE_PROT_SHIFT) & KVM_PTE_PROT_MASK);
  pgtable[idx] = pte;
}

/* Is the page mapped? */
int kvm_pte_in_use(int idx) {
  return kvm_pte_valid(pgtable[idx]);
}
