/*
 * TPot specification for the KVM page table (paper §5.1): each function
 * modifies its PTE as the RefinedC formalization specifies, expressed
 * directly over the packed bit representation.
 */

void spec__set_pte(void) {
  any(int, idx);
  any(unsigned long, pa);
  any(unsigned long, prot);
  any(int, j);
  assume(idx >= 0 && idx < PT_ENTRIES);
  assume(j >= 0 && j < PT_ENTRIES);
  assume((pa & ~KVM_PTE_ADDR_MASK) == 0); /* page-aligned, in range */
  assume(prot <= (KVM_PROT_R | KVM_PROT_W | KVM_PROT_X));
  unsigned long old_j = pgtable[j];

  kvm_set_pte(idx, pa, prot);

  assert(kvm_pte_valid(pgtable[idx]));
  assert(kvm_pte_addr(pgtable[idx]) == pa);
  assert(kvm_pte_prot(pgtable[idx]) == prot);
  if (j != idx)
    assert(pgtable[j] == old_j);
}

void spec__set_invalid(void) {
  any(int, idx);
  any(int, j);
  assume(idx >= 0 && idx < PT_ENTRIES);
  assume(j >= 0 && j < PT_ENTRIES);
  unsigned long old = pgtable[idx];
  unsigned long old_j = pgtable[j];

  kvm_set_invalid_pte(idx);

  assert(!kvm_pte_valid(pgtable[idx]));
  /* Break-before-make: address and protection bits survive. */
  assert(kvm_pte_addr(pgtable[idx]) == kvm_pte_addr(old));
  assert(kvm_pte_prot(pgtable[idx]) == kvm_pte_prot(old));
  if (j != idx)
    assert(pgtable[j] == old_j);
}

void spec__set_prot(void) {
  any(int, idx);
  any(unsigned long, prot);
  any(int, j);
  assume(idx >= 0 && idx < PT_ENTRIES);
  assume(j >= 0 && j < PT_ENTRIES);
  assume(prot <= (KVM_PROT_R | KVM_PROT_W | KVM_PROT_X));
  unsigned long old = pgtable[idx];
  unsigned long old_j = pgtable[j];

  kvm_set_prot(idx, prot);

  assert(kvm_pte_prot(pgtable[idx]) == prot);
  /* Address and validity are untouched. */
  assert(kvm_pte_addr(pgtable[idx]) == kvm_pte_addr(old));
  assert(kvm_pte_valid(pgtable[idx]) == kvm_pte_valid(old));
  if (j != idx)
    assert(pgtable[j] == old_j);
}
