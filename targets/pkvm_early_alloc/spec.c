/*
 * TPot specification for the pKVM early allocator — the POTs of paper
 * appendix A.1, ported verbatim modulo the scaled constants.
 */

/* Global invariant (appendix A.1, inv__early_alloc). */
int inv__early_alloc(void) {
  return names_obj((char *)base, char[NUM_PAGES * PAGE_SIZE])
      && end == base + NUM_PAGES * PAGE_SIZE
      && cur >= base && cur <= end;
}

/* Helper passed to forall_elem (appendix A.1, alloc_range_zero). */
int alloc_range_zero(long i, long start, long stop) {
  if (i < start || i >= stop)
    return 1;
  return ((char *)base)[i] == 0;
}

void spec__alloc_page(void) {
  assume(cur + PAGE_SIZE < end);

  unsigned long prev_end = end, prev_cur = cur;

  char *result = hyp_early_alloc_page();
  assert(result != NULL);

  assert(forall_elem((char *)base, &alloc_range_zero,
                     (long)(result - (char *)base),
                     (long)(result - (char *)base) + PAGE_SIZE));

  assert(cur == prev_cur + PAGE_SIZE);
  assert(end == prev_end);
}

void spec__alloc_contig(void) {
  any(unsigned int, nr_pages);
  assume(nr_pages > 0);
  assume(cur + PAGE_SIZE * (unsigned long)nr_pages < end);

  unsigned long prev_end = end, prev_cur = cur;

  char *result = hyp_early_alloc_contig(nr_pages);

  assert(result != NULL);
  assert(forall_elem((char *)base, &alloc_range_zero,
                     (long)(result - (char *)base),
                     (long)(result - (char *)base)
                         + PAGE_SIZE * (long)nr_pages));

  assert(cur == prev_cur + PAGE_SIZE * (unsigned long)nr_pages);
  assert(end == prev_end);
}

void spec__nr_pages(void) {
  unsigned long result = hyp_early_alloc_nr_pages();
  assert(result == (cur - base) / PAGE_SIZE);
}

void spec__init(void) {
  any(unsigned long, virt);
  assume(names_obj((char *)virt, char[NUM_PAGES * PAGE_SIZE]));
  hyp_early_alloc_init(virt, NUM_PAGES * PAGE_SIZE);
}
