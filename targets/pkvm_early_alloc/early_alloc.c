/*
 * Port of the pKVM hyp early allocator (paper §5.1, appendix A).
 *
 * pKVM uses this allocator during boot to manage a flat region of memory.
 * There is no reclamation: three long integers track the region (base/end)
 * and the next free address (cur). Allocation casts the integer address of
 * the next free page into a pointer and zero-initializes the page — the
 * int-to-pointer idiom the paper calls out.
 *
 * PAGE_SIZE/NUM_PAGES are scaled from 4096/…: the zeroing loop is verified
 * with a loop invariant (appendix A.2), so the constants only bound the
 * havoc region, not the proof structure.
 */

#define PAGE_SIZE 64
#define NUM_PAGES 4
#define NULL 0

unsigned long base;
unsigned long end;
unsigned long cur;

/* Loop invariant for clear_page: bytes [0, i) of the page are zero. */
int page_zero_upto(char *p, unsigned long j, unsigned long bound) {
  if (j >= bound)
    return 1;
  return *p == 0;
}

int loopinv__clear_page(unsigned long *ip, unsigned long *top) {
  /* Strict bound: the cut point sits inside the body, after the loop
   * condition has been applied (appendix A.2 walkthrough). */
  return *ip < PAGE_SIZE
      && forall_elem((char *)(*top), &page_zero_upto, *ip);
}

void clear_page(unsigned long to) {
  unsigned long i = 0;
  while (i < PAGE_SIZE) {
    __tpot_inv(&loopinv__clear_page, &i, &to,
               &i, sizeof(unsigned long), to, PAGE_SIZE);
    *(char *)(to + i) = 0;
    i = i + 1;
  }
}

char *hyp_early_alloc_contig(unsigned int nr_pages) {
  unsigned long ret = cur;
  unsigned long i;
  unsigned long p;

  if (!nr_pages)
    return NULL;

  cur = cur + PAGE_SIZE * (unsigned long)nr_pages;
  if (cur > end) {
    cur = ret;
    return NULL;
  }
  for (i = 0; i < nr_pages; i++) {
    /* The havoc region is the whole allocatable buffer: the per-call
     * sub-range [ret, ret + nr*PAGE_SIZE) has a symbolic extent, and the
     * invariant reconstructs everything the caller relies on. */
    __tpot_inv(&loopinv__contig, &i, &ret, &nr_pages,
               &i, sizeof(unsigned long),
               base, PAGE_SIZE * NUM_PAGES);
    p = ret + i * PAGE_SIZE;
    clear_page(p);
  }
  return (char *)ret;
}

/* Loop invariant for the multi-page loop: pages [0, i) are zeroed. */
int contig_zero_upto(char *b, unsigned long j, unsigned long pages) {
  if (j >= pages * PAGE_SIZE)
    return 1;
  return *b == 0;
}

int loopinv__contig(unsigned long *ip, unsigned long *retp,
                    unsigned int *nrp) {
  return *ip < (unsigned long)(*nrp)
      && cur == *retp + PAGE_SIZE * (unsigned long)(*nrp)
      && forall_elem((char *)(*retp), &contig_zero_upto, *ip);
}

char *hyp_early_alloc_page(void) {
  unsigned long ret = cur;

  cur = cur + PAGE_SIZE;
  if (cur > end) {
    cur = ret;
    return NULL;
  }
  clear_page(ret);
  return (char *)ret;
}

unsigned long hyp_early_alloc_nr_pages(void) {
  return (cur - base) / PAGE_SIZE;
}

void hyp_early_alloc_init(unsigned long virt, unsigned long size) {
  base = virt;
  end = virt + size;
  cur = virt;
}
