/*
 * TPot specification for the Vigor allocator (paper §5.1): borrowing
 * succeeds only for slots not previously in use; refreshing and returning
 * update timestamps correctly; timestamps of unrelated slots are unchanged
 * by borrow/refresh/return; expiry frees exactly the stale leases.
 */

void spec__borrow(void) {
  any(unsigned long, now);
  assume(now != TIME_INVALID);
  any(int, j);
  assume(j >= 0 && j < NUM_OBJS);
  unsigned long old_j = timestamps[j];

  int index = alloc_borrow(now);

  if (index >= 0) {
    assert(index < NUM_OBJS);
    assert(timestamps[index] == now);
    if (index != j)
      assert(timestamps[j] == old_j);
  } else {
    /* Full pool: in particular slot j was leased. */
    assert(old_j != TIME_INVALID);
  }
}

void spec__borrow_picks_free_slot(void) {
  any(unsigned long, now);
  assume(now != TIME_INVALID);
  any(int, j);
  assume(j >= 0 && j < NUM_OBJS);
  unsigned long old_j = timestamps[j];

  int index = alloc_borrow(now);

  /* The slot handed out was free before the call. */
  if (index == j)
    assert(old_j == TIME_INVALID);
}

void spec__refresh(void) {
  any(int, index);
  any(unsigned long, now);
  any(int, j);
  assume(index >= 0 && index < NUM_OBJS);
  assume(j >= 0 && j < NUM_OBJS);
  unsigned long old_j = timestamps[j];

  alloc_refresh(index, now);

  assert(timestamps[index] == now);
  if (j != index)
    assert(timestamps[j] == old_j);
}

void spec__return(void) {
  any(int, index);
  any(int, j);
  assume(index >= 0 && index < NUM_OBJS);
  assume(j >= 0 && j < NUM_OBJS);
  unsigned long old_j = timestamps[j];

  alloc_return(index);

  assert(!alloc_is_used(index));
  if (j != index)
    assert(timestamps[j] == old_j);
}

void spec__expire(void) {
  any(unsigned long, min_time);
  assume(min_time != TIME_INVALID);
  any(int, j);
  assume(j >= 0 && j < NUM_OBJS);
  unsigned long old_j = timestamps[j];

  alloc_expire(min_time);

  /* Stale leases are gone; live and free slots are untouched. */
  if (old_j != TIME_INVALID && old_j < min_time)
    assert(timestamps[j] == TIME_INVALID);
  else
    assert(timestamps[j] == old_j);
}
