/*
 * Port of the Vigor allocator (paper §5.1): an index pool used by network
 * functions to manage objects (NAT ports, IP addresses, …). Each object
 * slot carries the timestamp of its last lease renewal; a sentinel marks
 * free slots. Objects are reclaimed ("expired") when their lease lapses.
 *
 * Originally verified with VeriFast (Table 4 column "Vigor allocator").
 */

#define NUM_OBJS 8
#define TIME_INVALID 0xffffffffffffffff

unsigned long timestamps[NUM_OBJS];

/* Borrow (lease) a free slot: returns its index, or -1 when full. */
int alloc_borrow(unsigned long now) {
  int i;
  for (i = 0; i < NUM_OBJS; i++) {
    if (timestamps[i] == TIME_INVALID) {
      timestamps[i] = now;
      return i;
    }
  }
  return -1;
}

/* Renew the lease on a borrowed slot. */
void alloc_refresh(int index, unsigned long now) {
  timestamps[index] = now;
}

/* Return a slot to the pool. */
void alloc_return(int index) {
  timestamps[index] = TIME_INVALID;
}

/* Is the slot currently leased? */
int alloc_is_used(int index) {
  return timestamps[index] != TIME_INVALID;
}

/*
 * Reclaim every slot whose lease predates min_time. Returns the count.
 * The loop is statically bounded, so TPot unrolls it (§4.1: "By default,
 * TPot will unroll all loops"); no loop invariant is needed.
 */
int alloc_expire(unsigned long min_time) {
  int n = 0;
  int i;
  for (i = 0; i < NUM_OBJS; i++) {
    if (timestamps[i] != TIME_INVALID && timestamps[i] < min_time) {
      timestamps[i] = TIME_INVALID;
      n++;
    }
  }
  return n;
}
