/*
 * Function contracts for the *modular baseline verifier* (tpot-baseline),
 * mirroring the VeriFast methodology the paper compares against: every
 * function — public or internal — carries requires/ensures/modifies
 * annotations. Contrast with spec.c, where TPot needs none of these for
 * internal functions (Table 4's "Internal" row).
 */

int requires__alloc_refresh(int index, unsigned long now) {
  return index >= 0 && index < NUM_OBJS;
}
int ensures__alloc_refresh(int index, unsigned long now) {
  return timestamps[index] == now;
}
void modifies__alloc_refresh(void) { timestamps[0] = 0; }

int requires__alloc_return(int index) {
  return index >= 0 && index < NUM_OBJS;
}
int ensures__alloc_return(int index) {
  return timestamps[index] == TIME_INVALID;
}
void modifies__alloc_return(void) { timestamps[0] = 0; }

int requires__alloc_is_used(int index) {
  return index >= 0 && index < NUM_OBJS;
}
int ensures__alloc_is_used(int index, int result) {
  return result == (timestamps[index] != TIME_INVALID);
}
void modifies__alloc_is_used(void) { }

int requires__alloc_borrow(unsigned long now) {
  return now != TIME_INVALID;
}
int ensures__alloc_borrow(unsigned long now, int result) {
  if (result < 0)
    return 1;
  return result < NUM_OBJS && timestamps[result] == now;
}
void modifies__alloc_borrow(void) { timestamps[0] = 0; }

int requires__alloc_expire(unsigned long min_time) {
  return min_time != TIME_INVALID;
}
int ensures__alloc_expire(unsigned long min_time, int result) {
  return result >= 0 && result <= NUM_OBJS;
}
void modifies__alloc_expire(void) { timestamps[0] = 0; }
