/*
 * Komodo*: Komodo^S "with the VA-to-PA translation and pointers and
 * associated arithmetic added back in" (paper §5.1, Table 3). The secure
 * page pool is a flat region of monitor virtual memory; page contents are
 * reached by translating page numbers to virtual addresses and casting the
 * result to word pointers, and page-table entries store *physical*
 * addresses — exactly the features the Serval port had to remove.
 */

#define KOM_PAGE_COUNT 8
#define KOM_PAGE_WORDS 8
#define KOM_PAGE_SIZE 64
#define KOM_SECURE_PBASE 0x80000000

#define KOM_PAGE_FREE 0
#define KOM_PAGE_ADDRSPACE 1
#define KOM_PAGE_DISPATCHER 2
#define KOM_PAGE_L1PTABLE 3
#define KOM_PAGE_L2PTABLE 4
#define KOM_PAGE_DATA 5

#define KOM_ADDRSPACE_INIT 0
#define KOM_ADDRSPACE_FINAL 1
#define KOM_ADDRSPACE_STOPPED 2

#define KOM_ERR_SUCCESS 0
#define KOM_ERR_INVALID_PAGENO 1
#define KOM_ERR_PAGEINUSE 2
#define KOM_ERR_INVALID_ADDRSPACE 3
#define KOM_ERR_ALREADY_FINAL 4
#define KOM_ERR_NOT_FINAL 5
#define KOM_ERR_NOT_STOPPED 6
#define KOM_ERR_INVALID_MAPPING 7

struct kom_pagedb_entry {
  int type;
  int addrspace;
};

struct kom_pagedb_entry pagedb[KOM_PAGE_COUNT];
int as_state[KOM_PAGE_COUNT];
int as_l1pt[KOM_PAGE_COUNT];
int disp_entered[KOM_PAGE_COUNT];

/* Monitor virtual base of the secure page pool. */
unsigned long kom_secure_vbase;

/* --- Address translation (the Komodo* additions) ------------------- */

unsigned long kom_page_va(int page) {
  return kom_secure_vbase + (unsigned long)page * KOM_PAGE_SIZE;
}

unsigned long kom_page_pa(int page) {
  return KOM_SECURE_PBASE + (unsigned long)page * KOM_PAGE_SIZE;
}

/* Monitor page walk: physical secure address back to a page number. */
int kom_pa_to_page(unsigned long pa) {
  if (pa < KOM_SECURE_PBASE)
    return -1;
  if (pa >= KOM_SECURE_PBASE + KOM_PAGE_COUNT * KOM_PAGE_SIZE)
    return -1;
  return (int)((pa - KOM_SECURE_PBASE) / KOM_PAGE_SIZE);
}

/* Word access through a translated, cast pointer. */
unsigned long *kom_word_ptr(int page, int idx) {
  return (unsigned long *)(kom_page_va(page) + (unsigned long)idx * 8);
}

unsigned long kom_read_word(int page, int idx) {
  return *kom_word_ptr(page, idx);
}

void kom_write_word(int page, int idx, unsigned long val) {
  *kom_word_ptr(page, idx) = val;
}

/* --- The monitor proper (state machine as in Komodo^S) -------------- */

int kom_valid_pageno(int p) {
  return p >= 0 && p < KOM_PAGE_COUNT;
}

int kom_is_free(int p) {
  return pagedb[p].type == KOM_PAGE_FREE;
}

int kom_is_addrspace(int p) {
  return kom_valid_pageno(p) && pagedb[p].type == KOM_PAGE_ADDRSPACE;
}

int loopinv__zero_page(int *pp, int *ip) {
  return *ip >= 0 && *ip < KOM_PAGE_WORDS;
}

void kom_zero_page(int p) {
  int i;
  for (i = 0; i < KOM_PAGE_WORDS; i++) {
    kom_write_word(p, i, 0);
  }
}

int kom_allocate_page(int page, int asp, int type) {
  if (!kom_valid_pageno(page))
    return KOM_ERR_INVALID_PAGENO;
  if (!kom_is_free(page))
    return KOM_ERR_PAGEINUSE;
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  if (as_state[asp] != KOM_ADDRSPACE_INIT)
    return KOM_ERR_ALREADY_FINAL;
  kom_zero_page(page);
  pagedb[page].type = type;
  pagedb[page].addrspace = asp;
  return KOM_ERR_SUCCESS;
}

int kom_smc_init_addrspace(int page, int l1pt) {
  if (!kom_valid_pageno(page) || !kom_valid_pageno(l1pt))
    return KOM_ERR_INVALID_PAGENO;
  if (page == l1pt)
    return KOM_ERR_PAGEINUSE;
  if (!kom_is_free(page) || !kom_is_free(l1pt))
    return KOM_ERR_PAGEINUSE;
  kom_zero_page(page);
  kom_zero_page(l1pt);
  pagedb[page].type = KOM_PAGE_ADDRSPACE;
  pagedb[page].addrspace = page;
  pagedb[l1pt].type = KOM_PAGE_L1PTABLE;
  pagedb[l1pt].addrspace = page;
  as_state[page] = KOM_ADDRSPACE_INIT;
  as_l1pt[page] = l1pt;
  return KOM_ERR_SUCCESS;
}

int kom_smc_init_dispatcher(int page, int asp, unsigned long entry) {
  int err = kom_allocate_page(page, asp, KOM_PAGE_DISPATCHER);
  if (err != KOM_ERR_SUCCESS)
    return err;
  kom_write_word(page, 0, entry);
  disp_entered[page] = 0;
  return KOM_ERR_SUCCESS;
}

/* L1 entries store the *physical* address of the L2 table. */
int kom_smc_init_l2table(int page, int asp, int l1index) {
  int err;
  if (l1index < 0 || l1index >= KOM_PAGE_WORDS)
    return KOM_ERR_INVALID_MAPPING;
  err = kom_allocate_page(page, asp, KOM_PAGE_L2PTABLE);
  if (err != KOM_ERR_SUCCESS)
    return err;
  kom_write_word(as_l1pt[asp], l1index, kom_page_pa(page) | 0x1);
  return KOM_ERR_SUCCESS;
}

/* Map a data page: the L2 PTE packs the physical address with prot bits
 * (bit-twiddling over a translated address). */
int kom_smc_map_secure(int page, int asp, int l2page, int l2index,
                       unsigned long prot) {
  int err;
  if (l2index < 0 || l2index >= KOM_PAGE_WORDS)
    return KOM_ERR_INVALID_MAPPING;
  if (!kom_valid_pageno(l2page))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[l2page].type != KOM_PAGE_L2PTABLE
      || pagedb[l2page].addrspace != asp)
    return KOM_ERR_INVALID_MAPPING;
  err = kom_allocate_page(page, asp, KOM_PAGE_DATA);
  if (err != KOM_ERR_SUCCESS)
    return err;
  kom_write_word(l2page, l2index, kom_page_pa(page) | (prot & 0x7) | 0x1);
  return KOM_ERR_SUCCESS;
}

/* Walk an L2 PTE back to the mapped page number (page walk through the
 * packed physical address — the feature Serval could not support). */
int kom_l2_lookup(int l2page, int l2index) {
  unsigned long pte;
  if (!kom_valid_pageno(l2page))
    return -1;
  if (l2index < 0 || l2index >= KOM_PAGE_WORDS)
    return -1;
  pte = kom_read_word(l2page, l2index);
  if ((pte & 0x1) == 0)
    return -1;
  return kom_pa_to_page(pte & ~0xffUL);
}

int kom_smc_remove(int page) {
  int asp;
  if (!kom_valid_pageno(page))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[page].type == KOM_PAGE_FREE)
    return KOM_ERR_SUCCESS;
  asp = pagedb[page].addrspace;
  if (pagedb[page].type != KOM_PAGE_ADDRSPACE) {
    if (!kom_is_addrspace(asp))
      return KOM_ERR_INVALID_ADDRSPACE;
    if (as_state[asp] != KOM_ADDRSPACE_STOPPED)
      return KOM_ERR_NOT_STOPPED;
  }
  pagedb[page].type = KOM_PAGE_FREE;
  pagedb[page].addrspace = -1;
  return KOM_ERR_SUCCESS;
}

int kom_smc_finalise(int asp) {
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  if (as_state[asp] != KOM_ADDRSPACE_INIT)
    return KOM_ERR_ALREADY_FINAL;
  as_state[asp] = KOM_ADDRSPACE_FINAL;
  return KOM_ERR_SUCCESS;
}

int kom_smc_stop(int asp) {
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  as_state[asp] = KOM_ADDRSPACE_STOPPED;
  return KOM_ERR_SUCCESS;
}

int kom_smc_enter(int disp) {
  int asp;
  if (!kom_valid_pageno(disp))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[disp].type != KOM_PAGE_DISPATCHER)
    return KOM_ERR_INVALID_PAGENO;
  asp = pagedb[disp].addrspace;
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  if (as_state[asp] != KOM_ADDRSPACE_FINAL)
    return KOM_ERR_NOT_FINAL;
  if (disp_entered[disp])
    return KOM_ERR_PAGEINUSE;
  disp_entered[disp] = 1;
  return KOM_ERR_SUCCESS;
}

int kom_smc_resume(int disp) {
  int asp;
  if (!kom_valid_pageno(disp))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[disp].type != KOM_PAGE_DISPATCHER)
    return KOM_ERR_INVALID_PAGENO;
  asp = pagedb[disp].addrspace;
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  if (as_state[asp] != KOM_ADDRSPACE_FINAL)
    return KOM_ERR_NOT_FINAL;
  if (!disp_entered[disp])
    return KOM_ERR_PAGEINUSE;
  return KOM_ERR_SUCCESS;
}

int kom_svc_exit(int disp) {
  if (!kom_valid_pageno(disp))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[disp].type != KOM_PAGE_DISPATCHER)
    return KOM_ERR_INVALID_PAGENO;
  disp_entered[disp] = 0;
  return KOM_ERR_SUCCESS;
}
