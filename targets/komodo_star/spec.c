/*
 * TPot specification for Komodo*: the same 16 obligations as Komodo^S, but
 * over the pointer/VA-PA implementation (paper §5.1: "we added back the
 * pointer support and address translation removed for Serval, and
 * re-verified the same specifications"). The secure-region invariant names
 * the flat pool; reads go through the translated word pointers.
 */

int pagedb_entry_ok(struct kom_pagedb_entry *e, unsigned long i) {
  if (e->type < KOM_PAGE_FREE || e->type > KOM_PAGE_DATA)
    return 0;
  if (e->type == KOM_PAGE_FREE)
    return e->addrspace == -1;
  if (e->type == KOM_PAGE_ADDRSPACE)
    return e->addrspace == (int)i;
  return e->addrspace >= 0 && e->addrspace < KOM_PAGE_COUNT;
}

int inv__secure_region(void) {
  return names_obj((char *)kom_secure_vbase,
                   char[KOM_PAGE_COUNT * KOM_PAGE_SIZE])
      && forall_elem(pagedb, &pagedb_entry_ok);
}

void spec__va_pa_roundtrip(void) {
  any(int, page);
  assume(page >= 0 && page < KOM_PAGE_COUNT);

  unsigned long pa = kom_page_pa(page);
  int back = kom_pa_to_page(pa);

  assert(back == page);
}

void spec__pa_walk_rejects_insecure(void) {
  any(unsigned long, pa);
  assume(pa < KOM_SECURE_PBASE
         || pa >= KOM_SECURE_PBASE + KOM_PAGE_COUNT * KOM_PAGE_SIZE);

  int page = kom_pa_to_page(pa);

  assert(page == -1);
}

void spec__word_rw(void) {
  any(int, page);
  any(int, idx);
  any(unsigned long, val);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(idx >= 0 && idx < KOM_PAGE_WORDS);

  kom_write_word(page, idx, val);

  assert(kom_read_word(page, idx) == val);
}

void spec__word_rw_frame(void) {
  any(int, page);
  any(int, idx);
  any(unsigned long, val);
  any(int, p2);
  any(int, i2);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(idx >= 0 && idx < KOM_PAGE_WORDS);
  assume(p2 >= 0 && p2 < KOM_PAGE_COUNT);
  assume(i2 >= 0 && i2 < KOM_PAGE_WORDS);
  assume(p2 != page || i2 != idx);
  unsigned long old = kom_read_word(p2, i2);

  kom_write_word(page, idx, val);

  assert(kom_read_word(p2, i2) == old);
}

void spec__init_addrspace_ok(void) {
  any(int, page);
  any(int, l1pt);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(l1pt >= 0 && l1pt < KOM_PAGE_COUNT);
  assume(page != l1pt);
  assume(pagedb[page].type == KOM_PAGE_FREE);
  assume(pagedb[l1pt].type == KOM_PAGE_FREE);

  int err = kom_smc_init_addrspace(page, l1pt);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_ADDRSPACE);
  assert(pagedb[l1pt].type == KOM_PAGE_L1PTABLE);
  assert(as_state[page] == KOM_ADDRSPACE_INIT);
  assert(as_l1pt[page] == l1pt);
}

void spec__init_addrspace_inuse(void) {
  any(int, page);
  any(int, l1pt);
  any(int, j);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(l1pt >= 0 && l1pt < KOM_PAGE_COUNT);
  assume(j >= 0 && j < KOM_PAGE_COUNT);
  assume(pagedb[page].type != KOM_PAGE_FREE);
  int old_type = pagedb[j].type;

  int err = kom_smc_init_addrspace(page, l1pt);

  assert(err != KOM_ERR_SUCCESS);
  assert(pagedb[j].type == old_type);
}

void spec__init_dispatcher(void) {
  any(int, page);
  any(int, asp);
  any(unsigned long, entry);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[page].type == KOM_PAGE_FREE);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_INIT);

  int err = kom_smc_init_dispatcher(page, asp, entry);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_DISPATCHER);
  assert(kom_read_word(page, 0) == entry);
  assert(disp_entered[page] == 0);
}

void spec__init_l2table(void) {
  any(int, page);
  any(int, asp);
  any(int, l1index);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(l1index >= 0 && l1index < KOM_PAGE_WORDS);
  assume(pagedb[page].type == KOM_PAGE_FREE);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_INIT);
  assume(as_l1pt[asp] >= 0 && as_l1pt[asp] < KOM_PAGE_COUNT);
  assume(as_l1pt[asp] != page);

  int err = kom_smc_init_l2table(page, asp, l1index);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_L2PTABLE);
  /* The L1 entry holds the L2 table's *physical* address, valid bit set. */
  assert(kom_read_word(as_l1pt[asp], l1index)
         == (kom_page_pa(page) | 0x1));
}

void spec__map_secure(void) {
  any(int, page);
  any(int, asp);
  any(int, l2page);
  any(int, l2index);
  any(unsigned long, prot);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(l2page >= 0 && l2page < KOM_PAGE_COUNT);
  assume(l2index >= 0 && l2index < KOM_PAGE_WORDS);
  assume(pagedb[page].type == KOM_PAGE_FREE);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_INIT);
  assume(pagedb[l2page].type == KOM_PAGE_L2PTABLE);
  assume(pagedb[l2page].addrspace == asp);
  assume(l2page != page);

  int err = kom_smc_map_secure(page, asp, l2page, l2index, prot);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_DATA);
  assert(kom_read_word(l2page, l2index)
         == (kom_page_pa(page) | (prot & 0x7) | 0x1));
  /* The page walk recovers the mapped page from the packed PTE. */
  assert(kom_l2_lookup(l2page, l2index) == page);
}

void spec__remove_stopped(void) {
  any(int, page);
  any(int, asp);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[page].type == KOM_PAGE_DATA);
  assume(pagedb[page].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_STOPPED);

  int err = kom_smc_remove(page);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_FREE);
}

void spec__remove_running_fails(void) {
  any(int, page);
  any(int, asp);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[page].type == KOM_PAGE_DATA);
  assume(pagedb[page].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_FINAL);

  int err = kom_smc_remove(page);

  assert(err == KOM_ERR_NOT_STOPPED);
  assert(pagedb[page].type == KOM_PAGE_DATA);
}

void spec__finalise(void) {
  any(int, asp);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_INIT);

  int err = kom_smc_finalise(asp);

  assert(err == KOM_ERR_SUCCESS);
  assert(as_state[asp] == KOM_ADDRSPACE_FINAL);
}

void spec__finalise_twice_fails(void) {
  any(int, asp);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_FINAL);

  int err = kom_smc_finalise(asp);

  assert(err == KOM_ERR_ALREADY_FINAL);
}

void spec__stop(void) {
  any(int, asp);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);

  int err = kom_smc_stop(asp);

  assert(err == KOM_ERR_SUCCESS);
  assert(as_state[asp] == KOM_ADDRSPACE_STOPPED);
}

void spec__enter(void) {
  any(int, disp);
  any(int, asp);
  assume(disp >= 0 && disp < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[disp].type == KOM_PAGE_DISPATCHER);
  assume(pagedb[disp].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_FINAL);
  assume(disp_entered[disp] == 0);

  int err = kom_smc_enter(disp);

  assert(err == KOM_ERR_SUCCESS);
  assert(disp_entered[disp] == 1);
}

void spec__enter_not_final_fails(void) {
  any(int, disp);
  any(int, asp);
  assume(disp >= 0 && disp < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[disp].type == KOM_PAGE_DISPATCHER);
  assume(pagedb[disp].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] != KOM_ADDRSPACE_FINAL);

  int err = kom_smc_enter(disp);

  assert(err == KOM_ERR_NOT_FINAL);
}

void spec__resume_exit(void) {
  any(int, disp);
  any(int, asp);
  assume(disp >= 0 && disp < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[disp].type == KOM_PAGE_DISPATCHER);
  assume(pagedb[disp].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_FINAL);
  assume(disp_entered[disp] == 1);

  int err = kom_smc_resume(disp);
  assert(err == KOM_ERR_SUCCESS);

  err = kom_svc_exit(disp);
  assert(err == KOM_ERR_SUCCESS);
  assert(disp_entered[disp] == 0);
}
