/*
 * TPot specification for Komodo^S: 16 POTs covering the SMC API, ported
 * from the Serval specifications (paper §5.1). The global invariant keeps
 * the page database well-formed; each POT specifies one SMC's functional
 * behavior plus the frame over unrelated pagedb entries.
 */

int pagedb_entry_ok(struct kom_pagedb_entry *e, unsigned long i) {
  if (e->type < KOM_PAGE_FREE || e->type > KOM_PAGE_DATA)
    return 0;
  if (e->type == KOM_PAGE_FREE)
    return e->addrspace == -1;
  if (e->type == KOM_PAGE_ADDRSPACE)
    return e->addrspace == (int)i;
  return e->addrspace >= 0 && e->addrspace < KOM_PAGE_COUNT;
}

int inv__pagedb(void) {
  return forall_elem(pagedb, &pagedb_entry_ok);
}

void spec__get_secure_pages(void) {
  any(int, k);
  assume(k >= 0 && k < KOM_PAGE_COUNT);
  int was_free = kom_is_free(k);

  int n = kom_smc_get_secure_pages();

  assert(n >= 0 && n <= KOM_PAGE_COUNT);
  if (was_free)
    assert(n > 0);
}

void spec__init_addrspace_ok(void) {
  any(int, page);
  any(int, l1pt);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(l1pt >= 0 && l1pt < KOM_PAGE_COUNT);
  assume(page != l1pt);
  assume(pagedb[page].type == KOM_PAGE_FREE);
  assume(pagedb[l1pt].type == KOM_PAGE_FREE);

  int err = kom_smc_init_addrspace(page, l1pt);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_ADDRSPACE);
  assert(pagedb[l1pt].type == KOM_PAGE_L1PTABLE);
  assert(pagedb[l1pt].addrspace == page);
  assert(as_state[page] == KOM_ADDRSPACE_INIT);
  assert(as_l1pt[page] == l1pt);
}

void spec__init_addrspace_inuse(void) {
  any(int, page);
  any(int, l1pt);
  any(int, j);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(l1pt >= 0 && l1pt < KOM_PAGE_COUNT);
  assume(j >= 0 && j < KOM_PAGE_COUNT);
  assume(pagedb[page].type != KOM_PAGE_FREE);
  int old_type = pagedb[j].type;

  int err = kom_smc_init_addrspace(page, l1pt);

  assert(err != KOM_ERR_SUCCESS);
  /* Failure leaves the page database untouched. */
  assert(pagedb[j].type == old_type);
}

void spec__init_dispatcher(void) {
  any(int, page);
  any(int, asp);
  any(unsigned long, entry);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[page].type == KOM_PAGE_FREE);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_INIT);

  int err = kom_smc_init_dispatcher(page, asp, entry);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_DISPATCHER);
  assert(pagedb[page].addrspace == asp);
  assert(secure_pages[page][0] == entry);
  assert(disp_entered[page] == 0);
}

void spec__init_dispatcher_frame(void) {
  any(int, page);
  any(int, asp);
  any(unsigned long, entry);
  any(int, j);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(j >= 0 && j < KOM_PAGE_COUNT && j != page);
  int old_type = pagedb[j].type;

  kom_smc_init_dispatcher(page, asp, entry);

  assert(pagedb[j].type == old_type);
}

void spec__init_l2table(void) {
  any(int, page);
  any(int, asp);
  any(int, l1index);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(l1index >= 0 && l1index < KOM_PAGE_WORDS);
  assume(pagedb[page].type == KOM_PAGE_FREE);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_INIT);
  assume(as_l1pt[asp] >= 0 && as_l1pt[asp] < KOM_PAGE_COUNT);

  int err = kom_smc_init_l2table(page, asp, l1index);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_L2PTABLE);
  assert(secure_pages[as_l1pt[asp]][l1index] == (unsigned long)page);
}

void spec__map_secure(void) {
  any(int, page);
  any(int, asp);
  any(int, l2page);
  any(int, l2index);
  any(unsigned long, prot);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(l2page >= 0 && l2page < KOM_PAGE_COUNT);
  assume(l2index >= 0 && l2index < KOM_PAGE_WORDS);
  assume(pagedb[page].type == KOM_PAGE_FREE);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_INIT);
  assume(pagedb[l2page].type == KOM_PAGE_L2PTABLE);
  assume(pagedb[l2page].addrspace == asp);

  int err = kom_smc_map_secure(page, asp, l2page, l2index, prot);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_DATA);
  assert(pagedb[page].addrspace == asp);
  /* The PTE encodes the page number, the masked prot bits and VALID. */
  assert(secure_pages[l2page][l2index]
         == (((unsigned long)page << 8) | (prot & 0x7) | 0x1));
}

void spec__map_secure_bad_l2(void) {
  any(int, page);
  any(int, asp);
  any(int, l2page);
  any(int, l2index);
  any(unsigned long, prot);
  assume(l2page >= 0 && l2page < KOM_PAGE_COUNT);
  assume(l2index >= 0 && l2index < KOM_PAGE_WORDS);
  assume(pagedb[l2page].type != KOM_PAGE_L2PTABLE);

  int err = kom_smc_map_secure(page, asp, l2page, l2index, prot);

  assert(err != KOM_ERR_SUCCESS);
}

void spec__map_insecure(void) {
  any(int, asp);
  any(unsigned long, phys);
  any(int, l2page);
  any(int, l2index);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(l2page >= 0 && l2page < KOM_PAGE_COUNT);
  assume(l2index >= 0 && l2index < KOM_PAGE_WORDS);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_INIT);
  assume(pagedb[l2page].type == KOM_PAGE_L2PTABLE);
  assume(pagedb[l2page].addrspace == asp);

  int err = kom_smc_map_insecure(asp, phys, l2page, l2index);

  assert(err == KOM_ERR_SUCCESS);
  /* Insecure mappings carry the NS bit, never VALID-secure. */
  assert((secure_pages[l2page][l2index] & 0x1) == 0);
  assert((secure_pages[l2page][l2index] & 0x2) != 0);
}

void spec__remove_stopped(void) {
  any(int, page);
  any(int, asp);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[page].type == KOM_PAGE_DATA);
  assume(pagedb[page].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_STOPPED);

  int err = kom_smc_remove(page);

  assert(err == KOM_ERR_SUCCESS);
  assert(pagedb[page].type == KOM_PAGE_FREE);
  assert(pagedb[page].addrspace == -1);
}

void spec__remove_running_fails(void) {
  any(int, page);
  any(int, asp);
  assume(page >= 0 && page < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[page].type == KOM_PAGE_DATA);
  assume(pagedb[page].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_FINAL);
  int old_type = pagedb[page].type;

  int err = kom_smc_remove(page);

  /* Enclave memory cannot be reclaimed while it may still run. */
  assert(err == KOM_ERR_NOT_STOPPED);
  assert(pagedb[page].type == old_type);
}

void spec__finalise(void) {
  any(int, asp);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_INIT);

  int err = kom_smc_finalise(asp);

  assert(err == KOM_ERR_SUCCESS);
  assert(as_state[asp] == KOM_ADDRSPACE_FINAL);
}

void spec__finalise_twice_fails(void) {
  any(int, asp);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_FINAL);

  int err = kom_smc_finalise(asp);

  assert(err == KOM_ERR_ALREADY_FINAL);
  assert(as_state[asp] == KOM_ADDRSPACE_FINAL);
}

void spec__stop(void) {
  any(int, asp);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);

  int err = kom_smc_stop(asp);

  assert(err == KOM_ERR_SUCCESS);
  assert(as_state[asp] == KOM_ADDRSPACE_STOPPED);
}

void spec__enter(void) {
  any(int, disp);
  any(int, asp);
  assume(disp >= 0 && disp < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[disp].type == KOM_PAGE_DISPATCHER);
  assume(pagedb[disp].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_FINAL);
  assume(disp_entered[disp] == 0);

  int err = kom_smc_enter(disp);

  assert(err == KOM_ERR_SUCCESS);
  assert(disp_entered[disp] == 1);
}

void spec__enter_not_final_fails(void) {
  any(int, disp);
  any(int, asp);
  assume(disp >= 0 && disp < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[disp].type == KOM_PAGE_DISPATCHER);
  assume(pagedb[disp].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] != KOM_ADDRSPACE_FINAL);

  int err = kom_smc_enter(disp);

  assert(err == KOM_ERR_NOT_FINAL);
  assert(disp_entered[disp] == 0 || disp_entered[disp] == 1);
}

void spec__resume_exit(void) {
  any(int, disp);
  any(int, asp);
  assume(disp >= 0 && disp < KOM_PAGE_COUNT);
  assume(asp >= 0 && asp < KOM_PAGE_COUNT);
  assume(pagedb[disp].type == KOM_PAGE_DISPATCHER);
  assume(pagedb[disp].addrspace == asp);
  assume(pagedb[asp].type == KOM_PAGE_ADDRSPACE);
  assume(as_state[asp] == KOM_ADDRSPACE_FINAL);
  assume(disp_entered[disp] == 1);

  int err = kom_smc_resume(disp);
  assert(err == KOM_ERR_SUCCESS);

  err = kom_svc_exit(disp);
  assert(err == KOM_ERR_SUCCESS);
  assert(disp_entered[disp] == 0);
}
