/*
 * Komodo^S: the Komodo security monitor as ported by the Serval team
 * (paper §5.1) — "with pointers and virtual-to-physical address translation
 * removed, to be verifiable by Serval". Secure pages are indices into
 * global arrays; the page database tracks each page's type and owning
 * address space; the monitor's SMC API creates enclaves (address spaces,
 * dispatchers, page tables), maps data pages, and tears enclaves down.
 *
 * Reduced port: the SMC surface and the page-database state machine are
 * kept; SHA-based attestation and the ARM register file are out of scope
 * (as are the derived refcount-consistency properties, which the paper
 * also omits).
 */

#define KOM_PAGE_COUNT 8
#define KOM_PAGE_WORDS 8
#define KOM_INSECURE_RESERVED 0

/* Page types (the pagedb state machine). */
#define KOM_PAGE_FREE 0
#define KOM_PAGE_ADDRSPACE 1
#define KOM_PAGE_DISPATCHER 2
#define KOM_PAGE_L1PTABLE 3
#define KOM_PAGE_L2PTABLE 4
#define KOM_PAGE_DATA 5

/* Address-space lifecycle. */
#define KOM_ADDRSPACE_INIT 0
#define KOM_ADDRSPACE_FINAL 1
#define KOM_ADDRSPACE_STOPPED 2

/* SMC error codes. */
#define KOM_ERR_SUCCESS 0
#define KOM_ERR_INVALID_PAGENO 1
#define KOM_ERR_PAGEINUSE 2
#define KOM_ERR_INVALID_ADDRSPACE 3
#define KOM_ERR_ALREADY_FINAL 4
#define KOM_ERR_NOT_FINAL 5
#define KOM_ERR_NOT_STOPPED 6
#define KOM_ERR_INVALID_MAPPING 7

struct kom_pagedb_entry {
  int type;
  int addrspace; /* owning addrspace page index, or -1 */
};

struct kom_pagedb_entry pagedb[KOM_PAGE_COUNT];

/* Per-addrspace metadata, indexed by the addrspace page. */
int as_state[KOM_PAGE_COUNT];
int as_l1pt[KOM_PAGE_COUNT];

/* Secure page contents (no VA translation in Komodo^S: flat 2-D array). */
unsigned long secure_pages[KOM_PAGE_COUNT][KOM_PAGE_WORDS];

/* Per-dispatcher entry state. */
int disp_entered[KOM_PAGE_COUNT];

int kom_valid_pageno(int p) {
  return p >= 0 && p < KOM_PAGE_COUNT;
}

int kom_is_free(int p) {
  return pagedb[p].type == KOM_PAGE_FREE;
}

int kom_is_addrspace(int p) {
  return kom_valid_pageno(p) && pagedb[p].type == KOM_PAGE_ADDRSPACE;
}

void kom_zero_page(int p) {
  int i;
  for (i = 0; i < KOM_PAGE_WORDS; i++) {
    secure_pages[p][i] = 0;
  }
}

/* Allocate a secure page into an address space. */
int kom_allocate_page(int page, int asp, int type) {
  if (!kom_valid_pageno(page))
    return KOM_ERR_INVALID_PAGENO;
  if (!kom_is_free(page))
    return KOM_ERR_PAGEINUSE;
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  if (as_state[asp] != KOM_ADDRSPACE_INIT)
    return KOM_ERR_ALREADY_FINAL;
  kom_zero_page(page);
  pagedb[page].type = type;
  pagedb[page].addrspace = asp;
  return KOM_ERR_SUCCESS;
}

/* SMC: how many secure pages remain free. */
int kom_smc_get_secure_pages(void) {
  int n = 0;
  int i;
  for (i = 0; i < KOM_PAGE_COUNT; i++) {
    if (pagedb[i].type == KOM_PAGE_FREE)
      n++;
  }
  return n;
}

/* SMC: create an address space rooted at `page` with L1 table `l1pt`. */
int kom_smc_init_addrspace(int page, int l1pt) {
  if (!kom_valid_pageno(page) || !kom_valid_pageno(l1pt))
    return KOM_ERR_INVALID_PAGENO;
  if (page == l1pt)
    return KOM_ERR_PAGEINUSE;
  if (!kom_is_free(page) || !kom_is_free(l1pt))
    return KOM_ERR_PAGEINUSE;
  kom_zero_page(page);
  kom_zero_page(l1pt);
  pagedb[page].type = KOM_PAGE_ADDRSPACE;
  pagedb[page].addrspace = page;
  pagedb[l1pt].type = KOM_PAGE_L1PTABLE;
  pagedb[l1pt].addrspace = page;
  as_state[page] = KOM_ADDRSPACE_INIT;
  as_l1pt[page] = l1pt;
  return KOM_ERR_SUCCESS;
}

/* SMC: create a dispatcher (enclave entry point) page. */
int kom_smc_init_dispatcher(int page, int asp, unsigned long entry) {
  int err = kom_allocate_page(page, asp, KOM_PAGE_DISPATCHER);
  if (err != KOM_ERR_SUCCESS)
    return err;
  secure_pages[page][0] = entry;
  disp_entered[page] = 0;
  return KOM_ERR_SUCCESS;
}

/* SMC: create an L2 page table page. */
int kom_smc_init_l2table(int page, int asp, int l1index) {
  int err;
  if (l1index < 0 || l1index >= KOM_PAGE_WORDS)
    return KOM_ERR_INVALID_MAPPING;
  err = kom_allocate_page(page, asp, KOM_PAGE_L2PTABLE);
  if (err != KOM_ERR_SUCCESS)
    return err;
  secure_pages[as_l1pt[asp]][l1index] = (unsigned long)page;
  return KOM_ERR_SUCCESS;
}

/* SMC: map a data page at an L2 slot. */
int kom_smc_map_secure(int page, int asp, int l2page, int l2index,
                       unsigned long prot) {
  int err;
  if (l2index < 0 || l2index >= KOM_PAGE_WORDS)
    return KOM_ERR_INVALID_MAPPING;
  if (!kom_valid_pageno(l2page))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[l2page].type != KOM_PAGE_L2PTABLE
      || pagedb[l2page].addrspace != asp)
    return KOM_ERR_INVALID_MAPPING;
  err = kom_allocate_page(page, asp, KOM_PAGE_DATA);
  if (err != KOM_ERR_SUCCESS)
    return err;
  secure_pages[l2page][l2index] =
      ((unsigned long)page << 8) | (prot & 0x7) | 0x1;
  return KOM_ERR_SUCCESS;
}

/* SMC: map an insecure (shared) page at an L2 slot — no allocation. */
int kom_smc_map_insecure(int asp, unsigned long phys, int l2page,
                         int l2index) {
  if (l2index < 0 || l2index >= KOM_PAGE_WORDS)
    return KOM_ERR_INVALID_MAPPING;
  if (!kom_valid_pageno(l2page))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[l2page].type != KOM_PAGE_L2PTABLE
      || pagedb[l2page].addrspace != asp)
    return KOM_ERR_INVALID_MAPPING;
  if (!kom_is_addrspace(asp) || as_state[asp] != KOM_ADDRSPACE_INIT)
    return KOM_ERR_INVALID_ADDRSPACE;
  secure_pages[l2page][l2index] = (phys << 8) | 0x2;
  return KOM_ERR_SUCCESS;
}

/* SMC: return a page to the free pool (enclave must be stopped). */
int kom_smc_remove(int page) {
  int asp;
  if (!kom_valid_pageno(page))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[page].type == KOM_PAGE_FREE)
    return KOM_ERR_SUCCESS;
  asp = pagedb[page].addrspace;
  if (pagedb[page].type != KOM_PAGE_ADDRSPACE) {
    if (!kom_is_addrspace(asp))
      return KOM_ERR_INVALID_ADDRSPACE;
    if (as_state[asp] != KOM_ADDRSPACE_STOPPED)
      return KOM_ERR_NOT_STOPPED;
  }
  pagedb[page].type = KOM_PAGE_FREE;
  pagedb[page].addrspace = -1;
  return KOM_ERR_SUCCESS;
}

/* SMC: finalize an address space (no more allocation; entry allowed). */
int kom_smc_finalise(int asp) {
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  if (as_state[asp] != KOM_ADDRSPACE_INIT)
    return KOM_ERR_ALREADY_FINAL;
  as_state[asp] = KOM_ADDRSPACE_FINAL;
  return KOM_ERR_SUCCESS;
}

/* SMC: stop an address space (tear-down may begin). */
int kom_smc_stop(int asp) {
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  as_state[asp] = KOM_ADDRSPACE_STOPPED;
  return KOM_ERR_SUCCESS;
}

/* SMC: enter an enclave through a dispatcher. */
int kom_smc_enter(int disp) {
  int asp;
  if (!kom_valid_pageno(disp))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[disp].type != KOM_PAGE_DISPATCHER)
    return KOM_ERR_INVALID_PAGENO;
  asp = pagedb[disp].addrspace;
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  if (as_state[asp] != KOM_ADDRSPACE_FINAL)
    return KOM_ERR_NOT_FINAL;
  if (disp_entered[disp])
    return KOM_ERR_PAGEINUSE;
  disp_entered[disp] = 1;
  return KOM_ERR_SUCCESS;
}

/* SMC: resume a previously entered dispatcher. */
int kom_smc_resume(int disp) {
  int asp;
  if (!kom_valid_pageno(disp))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[disp].type != KOM_PAGE_DISPATCHER)
    return KOM_ERR_INVALID_PAGENO;
  asp = pagedb[disp].addrspace;
  if (!kom_is_addrspace(asp))
    return KOM_ERR_INVALID_ADDRSPACE;
  if (as_state[asp] != KOM_ADDRSPACE_FINAL)
    return KOM_ERR_NOT_FINAL;
  if (!disp_entered[disp])
    return KOM_ERR_PAGEINUSE;
  return KOM_ERR_SUCCESS;
}

/* Return from an enclave: mark the dispatcher re-enterable. */
int kom_svc_exit(int disp) {
  if (!kom_valid_pageno(disp))
    return KOM_ERR_INVALID_PAGENO;
  if (pagedb[disp].type != KOM_PAGE_DISPATCHER)
    return KOM_ERR_INVALID_PAGENO;
  disp_entered[disp] = 0;
  return KOM_ERR_SUCCESS;
}
