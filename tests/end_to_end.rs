//! Workspace-level integration tests: the full pipeline (C → HIR → TIR →
//! symbolic execution → solver) across crates, on the paper's running
//! examples and the bundled evaluation targets.

use tpot::engine::{PotStatus, Verifier, ViolationKind};

fn verifier(src: &str) -> Verifier {
    let checked = tpot::cfront::compile(src).expect("compile");
    Verifier::new(tpot::ir::lower(&checked).expect("lower"))
}

#[test]
fn paper_fig1_proves_and_catches_bugs() {
    let good = r#"
int a, b;
void increment(int *p) { *p = *p + 1; }
void decrement(int *p) { *p = *p - 1; }
void transfer(void) { increment(&a); decrement(&b); }
int get_sum(void) { return a + b; }
int inv__sum_zero(void) { return a + b == 0; }
void spec__transfer(void) {
  int old_a = a, old_b = b;
  transfer();
  assert(a == old_a + 1);
  assert(b == old_b - 1);
}
void spec__get_sum(void) { int res = get_sum(); assert(res == 0); }
"#;
    for r in verifier(good).verify_all() {
        assert!(r.status.is_proved(), "{}: {:?}", r.pot, r.status);
    }
    // Seeded bug: transfer increments a twice.
    let bad = good.replace("decrement(&b);", "increment(&b);");
    let r = verifier(&bad).verify_pot("spec__transfer");
    assert!(matches!(r.status, PotStatus::Failed(_)));
}

#[test]
fn all_bundled_targets_compile_and_lower() {
    for t in tpot::targets::all_targets() {
        let m = t.module().unwrap_or_else(|e| panic!("{}: {e}", t.name));
        assert!(m.num_insts() > 20, "{}", t.name);
        assert!(!m.pot_names().is_empty(), "{}", t.name);
    }
}

#[test]
fn pkvm_nr_pages_pot_proves() {
    let t = tpot::targets::target("pkvm").unwrap();
    let v = t.verifier().unwrap();
    let r = v.verify_pot("spec__nr_pages");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
fn pkvm_init_establishes_invariant() {
    let t = tpot::targets::target("pkvm").unwrap();
    let v = t.verifier().unwrap();
    let r = v.verify_pot("spec__init");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
#[ignore = "long-running on small machines (full Komodo-S POT); run with --ignored or via the table5 harness"]
fn komodo_finalise_proves() {
    let t = tpot::targets::target("komodo-s").unwrap();
    let v = t.verifier().unwrap();
    let r = v.verify_pot("spec__finalise");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
#[ignore = "long-running on small machines (page-walk division circuit); run with --ignored or via the table5 harness"]
fn komodo_star_va_pa_roundtrip_proves() {
    // The page-walk arithmetic Serval could not support (paper §5.1).
    let t = tpot::targets::target("komodo*").unwrap();
    let v = t.verifier().unwrap();
    let r = v.verify_pot("spec__va_pa_roundtrip");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
#[ignore = "long-running on small machines (64-bit PTE bit-blasting); run with --ignored or via the table5 harness"]
fn kvm_pgtable_seeded_bit_bug_caught() {
    // Break the prot mask: the RefinedC-style bit-level spec must catch it.
    let t = tpot::targets::target("page table").unwrap();
    let bad = t
        .full_source()
        .replace("pte = pte & ~KVM_PTE_PROT_MASK;", "pte = pte;");
    let m = tpot::ir::lower(&tpot::cfront::compile(&bad).unwrap()).unwrap();
    let r = Verifier::new(m).verify_pot("spec__set_prot");
    assert!(matches!(r.status, PotStatus::Failed(_)), "{:?}", r.status);
}

#[test]
fn use_after_free_detected_across_crates() {
    let src = r#"
int *p;
int inv__p(void) { return names_obj(p, int); }
void spec__uaf(void) { free(p); *p = 1; }
"#;
    let r = verifier(src).verify_pot("spec__uaf");
    match r.status {
        PotStatus::Failed(vs) => {
            assert!(vs.iter().any(|v| v.kind == ViolationKind::UseAfterFree))
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn baseline_modular_verifier_contrast() {
    // The Table-4 contrast in miniature: TPot verifies the component with
    // no internal contracts; the modular baseline needs one per function.
    let src = r#"
int a, b;
void increment(int *p) { *p = *p + 1; }
void transfer(void) { increment(&a); increment(&b); }
int inv__nonneg(void) { return 1; }
void spec__transfer(void) {
  int old_a = a;
  transfer();
  assert(a == old_a + 1);
}
"#;
    let r = verifier(src).verify_pot("spec__transfer");
    assert!(r.status.is_proved(), "{:?}", r.status);

    // Modular baseline on the same shape (contracts required).
    let modular = r#"
int count;
int requires__bump(void) { return count >= 0 && count < 100; }
int ensures__bump(int result) { return result == count && count >= 1 && count <= 100; }
void modifies__bump(void) { count = 0; }
int bump(void) { count = count + 1; return count; }
"#;
    let m = tpot::ir::lower(&tpot::cfront::compile(modular).unwrap()).unwrap();
    let mv = tpot::baseline::ModularVerifier::new(m).unwrap();
    let fr = mv.verify_function("bump");
    assert!(matches!(fr.status, PotStatus::Proved), "{:?}", fr.status);
}

#[test]
fn annotation_counter_reports_zero_internal_for_tpot() {
    for t in tpot::targets::all_targets() {
        let c = tpot::targets::annot::count_annotations(&t);
        assert_eq!(c.internal + c.predicates + c.proof, 0, "{}", t.name);
    }
}
