//! Workspace-level integration tests: the full pipeline (C → HIR → TIR →
//! symbolic execution → solver) across crates, on the paper's running
//! examples and the bundled evaluation targets.

use tpot::engine::{AddrMode, EngineConfig, PotStatus, Verifier, VerifyOptions, ViolationKind};

fn verifier(src: &str) -> Verifier {
    let checked = tpot::cfront::compile(src).expect("compile");
    Verifier::new(tpot::ir::lower(&checked).expect("lower"))
}

/// Verifier with the bitvector address encoding (§4.3's ablation baseline).
///
/// The heavyweight targets below use it in tier-1 because their queries
/// are pure bit-twiddling, where the bitvector encoding is orders of
/// magnitude faster than the integer encoding's `tpot_bv2int` detour. The
/// default integer encoding is exercised in tier-1 on the Komodo* proof
/// (`komodo_star_va_pa_roundtrip_proves_reduced_bounds_int_encoding`,
/// which pins the PR-7 bv2int re-check fix; DESIGN.md §5.2) and on the
/// same sources by the `slow-tests`-gated variants at the end of this
/// file.
fn bv_verifier(src: &str) -> Verifier {
    let checked = tpot::cfront::compile(src).expect("compile");
    let cfg = EngineConfig {
        addr_mode: AddrMode::Bv,
        ..EngineConfig::default()
    };
    Verifier::with_config(tpot::ir::lower(&checked).expect("lower"), cfg)
}

#[test]
fn paper_fig1_proves_and_catches_bugs() {
    let good = r#"
int a, b;
void increment(int *p) { *p = *p + 1; }
void decrement(int *p) { *p = *p - 1; }
void transfer(void) { increment(&a); decrement(&b); }
int get_sum(void) { return a + b; }
int inv__sum_zero(void) { return a + b == 0; }
void spec__transfer(void) {
  int old_a = a, old_b = b;
  transfer();
  assert(a == old_a + 1);
  assert(b == old_b - 1);
}
void spec__get_sum(void) { int res = get_sum(); assert(res == 0); }
"#;
    for r in verifier(good).verify(&VerifyOptions::new().jobs(1)) {
        assert!(r.status.is_proved(), "{}: {:?}", r.pot, r.status);
    }
    // Seeded bug: transfer increments a twice.
    let bad = good.replace("decrement(&b);", "increment(&b);");
    let r = verifier(&bad).verify_pot("spec__transfer");
    assert!(matches!(r.status, PotStatus::Failed(_)));
}

#[test]
fn all_bundled_targets_compile_and_lower() {
    for t in tpot::targets::all_targets() {
        let m = t.module().unwrap_or_else(|e| panic!("{}: {e}", t.name));
        assert!(m.num_insts() > 20, "{}", t.name);
        assert!(!m.pot_names().is_empty(), "{}", t.name);
    }
}

#[test]
fn pkvm_nr_pages_pot_proves() {
    let t = tpot::targets::target("pkvm").unwrap();
    let v = t.verifier().unwrap();
    let r = v.verify_pot("spec__nr_pages");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
fn pkvm_init_establishes_invariant() {
    let t = tpot::targets::target("pkvm").unwrap();
    let v = t.verifier().unwrap();
    let r = v.verify_pot("spec__init");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

// The three heavyweight POTs formerly sat behind bare `#[ignore]` and had
// bit-rotted: the full-bound proofs did not actually go through (the
// skolemized `forall_elem` re-check used an unbounded index — fixed in
// `interp/naming.rs` — and the integer pointer encoding's bv2int axioms
// are incomplete on Komodo*'s re-check terms, still open). Each now runs
// in three variants: full-bound + reduced-bound in tier-1 under the
// bitvector address encoding (seconds each), and the default integer
// encoding under `--features slow-tests` (minutes each) where it proves.

/// Shrinks Komodo-S/Komodo* page pools: 2 pages of 2 words each. The page
/// *size* stays 64 so Komodo*'s VA/PA arithmetic (divide/multiply by the
/// page size) is unchanged; only the pool and per-page word loops shrink.
fn reduced_komodo(src: &str) -> String {
    src.replace("#define KOM_PAGE_COUNT 8", "#define KOM_PAGE_COUNT 2")
        .replace("#define KOM_PAGE_WORDS 8", "#define KOM_PAGE_WORDS 2")
}

#[test]
fn komodo_finalise_proves() {
    let t = tpot::targets::target("komodo-s").unwrap();
    let r = bv_verifier(&t.full_source()).verify_pot("spec__finalise");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
fn komodo_finalise_proves_reduced_bounds() {
    let t = tpot::targets::target("komodo-s").unwrap();
    let src = reduced_komodo(&t.full_source());
    let r = bv_verifier(&src).verify_pot("spec__finalise");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
fn komodo_star_va_pa_roundtrip_proves() {
    // The page-walk arithmetic Serval could not support (paper §5.1).
    let t = tpot::targets::target("komodo*").unwrap();
    let r = bv_verifier(&t.full_source()).verify_pot("spec__va_pa_roundtrip");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
fn komodo_star_va_pa_roundtrip_proves_reduced_bounds() {
    let t = tpot::targets::target("komodo*").unwrap();
    let src = reduced_komodo(&t.full_source());
    let r = bv_verifier(&src).verify_pot("spec__va_pa_roundtrip");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
fn kvm_pgtable_seeded_bit_bug_caught() {
    // Break the prot mask: the RefinedC-style bit-level spec must catch it.
    let t = tpot::targets::target("page table").unwrap();
    let bad = t
        .full_source()
        .replace("pte = pte & ~KVM_PTE_PROT_MASK;", "pte = pte;");
    let r = bv_verifier(&bad).verify_pot("spec__set_prot");
    assert!(matches!(r.status, PotStatus::Failed(_)), "{:?}", r.status);
}

#[test]
fn kvm_pgtable_set_prot_proves() {
    // The unbroken source must still prove, so the seeded-bug test above
    // can't pass vacuously.
    let t = tpot::targets::target("page table").unwrap();
    let r = bv_verifier(&t.full_source()).verify_pot("spec__set_prot");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
fn kvm_pgtable_seeded_bit_bug_caught_reduced_bounds() {
    let t = tpot::targets::target("page table").unwrap();
    let bad = t
        .full_source()
        .replace("#define PT_ENTRIES 8", "#define PT_ENTRIES 2")
        .replace("pte = pte & ~KVM_PTE_PROT_MASK;", "pte = pte;");
    let r = bv_verifier(&bad).verify_pot("spec__set_prot");
    assert!(matches!(r.status, PotStatus::Failed(_)), "{:?}", r.status);
}

#[test]
fn kvm_pgtable_set_prot_proves_reduced_bounds() {
    let t = tpot::targets::target("page table").unwrap();
    let src = t
        .full_source()
        .replace("#define PT_ENTRIES 8", "#define PT_ENTRIES 2");
    let r = bv_verifier(&src).verify_pot("spec__set_prot");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

// Default integer-encoding variants (the paper's primary §4.3 encoding),
// multi-minute in release: `cargo test --release --features slow-tests`.

/// The integer-encoding Komodo* re-check: formerly the one POT the
/// default encoding could not prove (spurious countermodels from the
/// incomplete bv2int axiom instantiation on `base + k*elem_size` skolem
/// terms, DESIGN.md §5.2). `forall_check` now assumes the skolem bound
/// with its integer translation and eagerly instantiates the mod-image
/// axioms on the compound element pointer, so this proves — promoted out
/// of `--features slow-tests` into tier-1 at reduced bounds.
#[test]
fn komodo_star_va_pa_roundtrip_proves_reduced_bounds_int_encoding() {
    let t = tpot::targets::target("komodo*").unwrap();
    let src = reduced_komodo(&t.full_source());
    let r = verifier(&src).verify_pot("spec__va_pa_roundtrip");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "integer-encoding Komodo-S proof is ~3 min in release; tier-1 covers the same POT under the bitvector encoding"
)]
fn komodo_finalise_proves_reduced_bounds_int_encoding() {
    let t = tpot::targets::target("komodo-s").unwrap();
    let src = reduced_komodo(&t.full_source());
    let r = verifier(&src).verify_pot("spec__finalise");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "integer-encoding PTE proof is ~1 min in release; tier-1 covers the same POT under the bitvector encoding"
)]
fn kvm_pgtable_set_prot_proves_reduced_bounds_int_encoding() {
    let t = tpot::targets::target("page table").unwrap();
    let src = t
        .full_source()
        .replace("#define PT_ENTRIES 8", "#define PT_ENTRIES 2");
    let r = verifier(&src).verify_pot("spec__set_prot");
    assert!(r.status.is_proved(), "{:?}", r.status);
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "integer-encoding seeded-bug run is ~30 s in release; tier-1 covers the same POT under the bitvector encoding"
)]
fn kvm_pgtable_seeded_bit_bug_caught_reduced_bounds_int_encoding() {
    let t = tpot::targets::target("page table").unwrap();
    let bad = t
        .full_source()
        .replace("#define PT_ENTRIES 8", "#define PT_ENTRIES 2")
        .replace("pte = pte & ~KVM_PTE_PROT_MASK;", "pte = pte;");
    let r = verifier(&bad).verify_pot("spec__set_prot");
    assert!(matches!(r.status, PotStatus::Failed(_)), "{:?}", r.status);
}

#[test]
fn use_after_free_detected_across_crates() {
    let src = r#"
int *p;
int inv__p(void) { return names_obj(p, int); }
void spec__uaf(void) { free(p); *p = 1; }
"#;
    let r = verifier(src).verify_pot("spec__uaf");
    match r.status {
        PotStatus::Failed(vs) => {
            assert!(vs.iter().any(|v| v.kind == ViolationKind::UseAfterFree))
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn baseline_modular_verifier_contrast() {
    // The Table-4 contrast in miniature: TPot verifies the component with
    // no internal contracts; the modular baseline needs one per function.
    let src = r#"
int a, b;
void increment(int *p) { *p = *p + 1; }
void transfer(void) { increment(&a); increment(&b); }
int inv__nonneg(void) { return 1; }
void spec__transfer(void) {
  int old_a = a;
  transfer();
  assert(a == old_a + 1);
}
"#;
    let r = verifier(src).verify_pot("spec__transfer");
    assert!(r.status.is_proved(), "{:?}", r.status);

    // Modular baseline on the same shape (contracts required).
    let modular = r#"
int count;
int requires__bump(void) { return count >= 0 && count < 100; }
int ensures__bump(int result) { return result == count && count >= 1 && count <= 100; }
void modifies__bump(void) { count = 0; }
int bump(void) { count = count + 1; return count; }
"#;
    let m = tpot::ir::lower(&tpot::cfront::compile(modular).unwrap()).unwrap();
    let mv = tpot::baseline::ModularVerifier::new(m).unwrap();
    let fr = mv.verify_function("bump");
    assert!(matches!(fr.status, PotStatus::Proved), "{:?}", fr.status);
}

#[test]
fn annotation_counter_reports_zero_internal_for_tpot() {
    for t in tpot::targets::all_targets() {
        let c = tpot::targets::annot::count_annotations(&t);
        assert_eq!(c.internal + c.predicates + c.proof, 0, "{}", t.name);
    }
}

/// Persistent-cache round trip on the pKVM smoke subset: a second verifier
/// over the unchanged target, pointed at the same cache file, must replay
/// every solver query from disk (100% hit rate — zero misses).
#[test]
fn pkvm_smoke_subset_cache_round_trip_hits_fully() {
    let path =
        std::env::temp_dir().join(format!("tpot_e2e_pkvm_cache_{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let t = tpot::targets::target("pkvm").unwrap();
    let opts = VerifyOptions::new()
        .pots(["spec__nr_pages", "spec__init"])
        .jobs(1)
        .cache_path(&path);

    let cold = t.verifier().unwrap().verify(&opts);
    assert!(cold.iter().all(|r| r.status.is_proved()));
    let cold_misses: u64 = cold.iter().map(|r| r.stats.cache_misses).sum();
    assert!(cold_misses > 0, "cold run solves");

    let warm = t.verifier().unwrap().verify(&opts);
    assert!(warm.iter().all(|r| r.status.is_proved()));
    let warm_misses: u64 = warm.iter().map(|r| r.stats.cache_misses).sum();
    let warm_hits: u64 = warm.iter().map(|r| r.stats.cache_hits).sum();
    assert_eq!(warm_misses, 0, "100% hit rate after restart");
    assert!(warm_hits > 0);
    let _ = std::fs::remove_file(&path);
}
